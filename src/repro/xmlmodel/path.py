"""Minimal path expressions over :class:`~repro.xmlmodel.node.XMLNode` trees.

The feature extractor and the dataset loaders navigate result trees with simple
slash-separated tag paths.  The supported grammar is intentionally tiny —
the goal is readable navigation code, not an XPath engine:

* ``a/b/c`` — child steps by tag name,
* ``*`` — any element child,
* ``//a`` prefix — descendant-or-self search for the first step,
* ``.`` — stay on the current node.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.errors import ReproError
from repro.xmlmodel.node import XMLNode

__all__ = ["PathExpression", "find_all", "find_first"]


class PathExpression:
    """A compiled path expression."""

    def __init__(self, expression: str):
        if not expression or not expression.strip():
            raise ReproError("empty path expression")
        self.expression = expression.strip()
        self.descendant_first = self.expression.startswith("//")
        body = self.expression[2:] if self.descendant_first else self.expression
        self.steps: List[str] = [step for step in body.split("/") if step and step != "."]
        if self.descendant_first and not self.steps:
            raise ReproError(f"descendant path needs at least one step: {expression!r}")

    def evaluate(self, node: XMLNode) -> List[XMLNode]:
        """Return every element matched by this path starting at ``node``."""
        if not self.steps:
            return [node]
        first, *rest = self.steps
        if self.descendant_first:
            frontier = [candidate for candidate in node.iter_elements() if _matches(candidate, first)]
        else:
            frontier = [child for child in node.element_children() if _matches(child, first)]
        for step in rest:
            next_frontier: List[XMLNode] = []
            for current in frontier:
                next_frontier.extend(
                    child for child in current.element_children() if _matches(child, step)
                )
            frontier = next_frontier
        return frontier

    def __repr__(self) -> str:
        return f"PathExpression({self.expression!r})"


def _matches(node: XMLNode, step: str) -> bool:
    return step == "*" or node.tag == step


def find_all(node: XMLNode, expression: str) -> List[XMLNode]:
    """Return all elements under ``node`` matching a path expression."""
    return PathExpression(expression).evaluate(node)


def find_first(node: XMLNode, expression: str) -> Optional[XMLNode]:
    """Return the first element matching a path expression, or ``None``."""
    matches = PathExpression(expression).evaluate(node)
    return matches[0] if matches else None
