"""The :class:`XMLNode` tree type.

An :class:`XMLNode` is an ordered, labelled tree node.  Element nodes carry a
tag name and optional attributes; text nodes carry character data.  Every node
knows its parent and its :class:`~repro.xmlmodel.dewey.DeweyLabel`, which is
assigned when the node is attached to a tree and re-assigned by
:meth:`XMLNode.relabel` after structural edits.

The model intentionally stays close to what the XSACT paper needs:

* search results are XML subtrees (so nodes support subtree copies),
* the entity identifier reasons about tag names, sibling repetition and leaf
  text values,
* the feature extractor walks (entity, attribute, value) paths.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.xmlmodel.dewey import DeweyLabel

__all__ = ["NodeKind", "XMLNode"]


class NodeKind(enum.Enum):
    """Kind of an :class:`XMLNode`."""

    ELEMENT = "element"
    TEXT = "text"


class XMLNode:
    """A node in an ordered XML tree.

    Parameters
    ----------
    tag:
        Element tag name.  ``None`` for text nodes.
    text:
        Character data.  ``None`` for element nodes without direct text; text
        nodes always have a (possibly empty) string.
    attributes:
        XML attributes of an element node.
    kind:
        Explicit node kind; inferred from ``tag`` when omitted.

    Notes
    -----
    Children are stored in document order.  Dewey labels are maintained lazily:
    construction via :class:`~repro.xmlmodel.builder.TreeBuilder` or the parser
    produces correctly-labelled trees, and :meth:`relabel` can be called after
    manual surgery.
    """

    __slots__ = ("tag", "text", "attributes", "kind", "parent", "children", "label")

    def __init__(
        self,
        tag: Optional[str] = None,
        text: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
        kind: Optional[NodeKind] = None,
    ):
        if kind is None:
            kind = NodeKind.ELEMENT if tag is not None else NodeKind.TEXT
        if kind is NodeKind.ELEMENT and tag is None:
            raise ReproError("element nodes require a tag name")
        if kind is NodeKind.TEXT and tag is not None:
            raise ReproError("text nodes must not have a tag name")
        self.tag = tag
        self.text = text if text is not None else ("" if kind is NodeKind.TEXT else None)
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.kind = kind
        self.parent: Optional[XMLNode] = None
        self.children: List[XMLNode] = []
        self.label: DeweyLabel = DeweyLabel.root()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def element(cls, tag: str, attributes: Optional[Dict[str, str]] = None) -> "XMLNode":
        """Create a detached element node."""
        return cls(tag=tag, attributes=attributes, kind=NodeKind.ELEMENT)

    @classmethod
    def text_node(cls, text: str) -> "XMLNode":
        """Create a detached text node."""
        return cls(tag=None, text=text, kind=NodeKind.TEXT)

    def append_child(self, child: "XMLNode") -> "XMLNode":
        """Attach ``child`` as the last child and return it.

        The child's Dewey label (and its descendants') are updated.
        """
        if child.parent is not None:
            raise ReproError("node is already attached to a parent")
        child.parent = self
        self.children.append(child)
        child._assign_labels(self.label.child(len(self.children) - 1))
        return child

    def add_element(self, tag: str, attributes: Optional[Dict[str, str]] = None) -> "XMLNode":
        """Create, attach and return a new element child."""
        return self.append_child(XMLNode.element(tag, attributes))

    def add_text(self, text: str) -> "XMLNode":
        """Create, attach and return a new text child."""
        return self.append_child(XMLNode.text_node(text))

    def add_leaf(self, tag: str, value: str) -> "XMLNode":
        """Create and attach ``<tag>value</tag>`` and return the element."""
        leaf = self.add_element(tag)
        leaf.add_text(value)
        return leaf

    def detach(self) -> "XMLNode":
        """Remove this node from its parent and return it (labels reset)."""
        if self.parent is None:
            return self
        self.parent.children.remove(self)
        self.parent = None
        self._assign_labels(DeweyLabel.root())
        return self

    def _assign_labels(self, label: DeweyLabel) -> None:
        self.label = label
        for offset, child in enumerate(self.children):
            child._assign_labels(label.child(offset))

    def relabel(self, base: Optional[DeweyLabel] = None) -> None:
        """Recompute Dewey labels for this subtree.

        Parameters
        ----------
        base:
            Label to assign to this node; defaults to its current label when it
            still has a parent, or the root label otherwise.
        """
        if base is None:
            base = self.label if self.parent is not None else DeweyLabel.root()
        self._assign_labels(base)

    # ------------------------------------------------------------------ #
    # Predicates and accessors
    # ------------------------------------------------------------------ #
    @property
    def is_element(self) -> bool:
        """Whether this is an element node."""
        return self.kind is NodeKind.ELEMENT

    @property
    def is_text(self) -> bool:
        """Whether this is a text node."""
        return self.kind is NodeKind.TEXT

    @property
    def is_leaf_element(self) -> bool:
        """Whether this element's children are text nodes only (or none)."""
        return self.is_element and all(child.is_text for child in self.children)

    @property
    def is_root(self) -> bool:
        """Whether this node has no parent."""
        return self.parent is None

    @property
    def depth(self) -> int:
        """Number of edges from the tree root to this node."""
        return self.label.depth

    def element_children(self) -> List["XMLNode"]:
        """Return the element children in document order."""
        return [child for child in self.children if child.is_element]

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes, stripped."""
        parts: List[str] = []
        for node in self.walk():
            if node.is_text and node.text:
                parts.append(node.text)
        return " ".join(part.strip() for part in parts if part.strip())

    def direct_text(self) -> str:
        """Concatenated text of the node's *direct* text children, stripped."""
        parts = [child.text or "" for child in self.children if child.is_text]
        return " ".join(part.strip() for part in parts if part.strip())

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #
    def walk(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document order (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_elements(self) -> Iterator["XMLNode"]:
        """Yield every element node of the subtree in document order."""
        for node in self.walk():
            if node.is_element:
                yield node

    def iter_leaves(self) -> Iterator["XMLNode"]:
        """Yield every leaf element (elements whose children are all text)."""
        for node in self.iter_elements():
            if node.is_leaf_element:
                yield node

    def find_children(self, tag: str) -> List["XMLNode"]:
        """Return direct element children with the given tag."""
        return [child for child in self.children if child.is_element and child.tag == tag]

    def find_child(self, tag: str) -> Optional["XMLNode"]:
        """Return the first direct element child with the given tag, if any."""
        for child in self.children:
            if child.is_element and child.tag == tag:
                return child
        return None

    def find_descendants(self, tag: str) -> List["XMLNode"]:
        """Return every descendant element (excluding self) with the tag."""
        return [node for node in self.iter_elements() if node is not self and node.tag == tag]

    def ancestors(self) -> Iterator["XMLNode"]:
        """Yield proper ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "XMLNode":
        """Return the root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def node_at(self, label: DeweyLabel) -> "XMLNode":
        """Return the descendant node whose label is ``label``.

        The label must be relative to *this* node's label (i.e. this node's
        label must be a prefix of ``label``).
        """
        own = self.label.components
        target = label.components
        if target[: len(own)] != own:
            raise ReproError(f"label {label} is not under {self.label}")
        node = self
        for offset in target[len(own):]:
            try:
                node = node.children[offset]
            except IndexError as exc:
                raise ReproError(f"no node at label {label}") from exc
        return node

    # ------------------------------------------------------------------ #
    # Subtree operations
    # ------------------------------------------------------------------ #
    def copy(self) -> "XMLNode":
        """Return a deep copy of this subtree, detached and re-labelled.

        Labels are assigned in a single pass (each node's label is derived
        from its already-copied parent), avoiding the repeated subtree
        relabelling that per-child :meth:`append_child` calls would cost.
        """
        clone = XMLNode(tag=self.tag, text=self.text, attributes=dict(self.attributes), kind=self.kind)
        stack = [(self, clone)]
        while stack:
            source, target = stack.pop()
            for offset, child in enumerate(source.children):
                child_clone = XMLNode(
                    tag=child.tag,
                    text=child.text,
                    attributes=dict(child.attributes),
                    kind=child.kind,
                )
                child_clone.parent = target
                child_clone.label = target.label.child(offset)
                target.children.append(child_clone)
                stack.append((child, child_clone))
        return clone

    def size(self) -> int:
        """Number of nodes (elements and text) in this subtree."""
        return sum(1 for _ in self.walk())

    def count_elements(self) -> int:
        """Number of element nodes in this subtree."""
        return sum(1 for _ in self.iter_elements())

    def prune(self, keep: Callable[["XMLNode"], bool]) -> Optional["XMLNode"]:
        """Return a copy of the subtree keeping only nodes on paths to kept nodes.

        A node is retained if ``keep(node)`` is true for it or for any of its
        descendants; ancestors of kept nodes are retained to preserve structure.
        Returns ``None`` when nothing is kept.
        """
        kept_children = [child.prune(keep) for child in self.children]
        kept_children = [child for child in kept_children if child is not None]
        if not kept_children and not keep(self):
            return None
        clone = XMLNode(tag=self.tag, text=self.text, attributes=dict(self.attributes), kind=self.kind)
        for child in kept_children:
            clone.append_child(child)
        return clone

    def path_tags(self) -> List[str]:
        """Return the list of element tags from the root down to this node."""
        tags = [node.tag for node in self.ancestors() if node.is_element]
        tags.reverse()
        if self.is_element:
            tags.append(self.tag)
        return [tag for tag in tags if tag is not None]

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        if self.is_text:
            snippet = (self.text or "")[:20]
            return f"XMLNode(text={snippet!r}, label='{self.label}')"
        return f"XMLNode(<{self.tag}>, label='{self.label}', children={len(self.children)})"

    def __len__(self) -> int:
        return len(self.children)

    def __iter__(self) -> Iterator["XMLNode"]:
        return iter(self.children)
