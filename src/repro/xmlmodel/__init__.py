"""XML tree substrate used throughout the XSACT reproduction.

XSACT operates on *structured* search results.  In the paper those results are
XML subtrees returned by the XSeek search engine, so the rest of the library is
built on a small, self-contained XML data model:

* :class:`~repro.xmlmodel.dewey.DeweyLabel` — hierarchical node labels that make
  ancestor tests and lowest-common-ancestor computation cheap, which the SLCA /
  ELCA search algorithms rely on.
* :class:`~repro.xmlmodel.node.XMLNode` — an ordered, labelled tree node with
  element / text distinction, navigation helpers and subtree utilities.
* :func:`~repro.xmlmodel.parser.parse_xml` — a dependency-free XML parser for
  the subset of XML used by the datasets (elements, attributes, text, comments,
  CDATA, declarations, entity references).
* :func:`~repro.xmlmodel.serializer.serialize` — the inverse of the parser.
* :class:`~repro.xmlmodel.builder.TreeBuilder` — a programmatic builder used by
  the synthetic dataset generators.
* :mod:`~repro.xmlmodel.path` — minimal path expressions ("product/reviews/review")
  for navigating result trees.
"""

from repro.xmlmodel.builder import TreeBuilder, element, text_element
from repro.xmlmodel.dewey import DeweyLabel, common_ancestor_label
from repro.xmlmodel.node import NodeKind, XMLNode
from repro.xmlmodel.parser import parse_xml, parse_xml_file
from repro.xmlmodel.path import PathExpression, find_all, find_first
from repro.xmlmodel.serializer import serialize, to_pretty_xml

__all__ = [
    "DeweyLabel",
    "common_ancestor_label",
    "NodeKind",
    "XMLNode",
    "parse_xml",
    "parse_xml_file",
    "serialize",
    "to_pretty_xml",
    "TreeBuilder",
    "element",
    "text_element",
    "PathExpression",
    "find_all",
    "find_first",
]
