"""Serialisation of :class:`~repro.xmlmodel.node.XMLNode` trees back to XML text."""

from __future__ import annotations

from typing import List

from repro.xmlmodel.node import XMLNode

__all__ = ["serialize", "to_pretty_xml", "escape_text", "escape_attribute"]


def escape_text(text: str) -> str:
    """Escape character data for inclusion in element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape character data for inclusion in a double-quoted attribute value."""
    return escape_text(text).replace('"', "&quot;")


def serialize(node: XMLNode) -> str:
    """Serialise a subtree to a compact, single-line XML string."""
    parts: List[str] = []
    _write_compact(node, parts)
    return "".join(parts)


def to_pretty_xml(node: XMLNode, indent: str = "  ") -> str:
    """Serialise a subtree with one element per line and the given indent."""
    parts: List[str] = []
    _write_pretty(node, parts, indent, 0)
    return "\n".join(parts)


def _start_tag(node: XMLNode, self_closing: bool) -> str:
    attributes = "".join(
        f' {name}="{escape_attribute(value)}"' for name, value in node.attributes.items()
    )
    closer = "/>" if self_closing else ">"
    return f"<{node.tag}{attributes}{closer}"


def _write_compact(node: XMLNode, parts: List[str]) -> None:
    if node.is_text:
        parts.append(escape_text(node.text or ""))
        return
    if not node.children:
        parts.append(_start_tag(node, self_closing=True))
        return
    parts.append(_start_tag(node, self_closing=False))
    for child in node.children:
        _write_compact(child, parts)
    parts.append(f"</{node.tag}>")


def _write_pretty(node: XMLNode, parts: List[str], indent: str, depth: int) -> None:
    pad = indent * depth
    if node.is_text:
        parts.append(f"{pad}{escape_text(node.text or '')}")
        return
    if not node.children:
        parts.append(f"{pad}{_start_tag(node, self_closing=True)}")
        return
    if node.is_leaf_element:
        text = escape_text(node.direct_text())
        parts.append(f"{pad}{_start_tag(node, self_closing=False)}{text}</{node.tag}>")
        return
    parts.append(f"{pad}{_start_tag(node, self_closing=False)}")
    for child in node.children:
        _write_pretty(child, parts, indent, depth + 1)
    parts.append(f"{pad}</{node.tag}>")
