"""A dependency-free XML parser producing :class:`~repro.xmlmodel.node.XMLNode` trees.

The parser covers the XML subset that the XSACT datasets (Product Reviews,
Outdoor Retailer, IMDB) and the test corpora need:

* elements with attributes (single- or double-quoted),
* character data and the five predefined entity references,
* numeric character references (decimal and hexadecimal),
* comments, processing instructions and the XML declaration (skipped),
* CDATA sections,
* a DOCTYPE declaration without an internal subset (skipped).

It is deliberately strict about well-formedness — mismatched tags, unterminated
constructs and stray markup raise :class:`~repro.errors.XMLParseError` with the
character offset, because the search substrate indexes documents by position and
silently mis-parsed data would corrupt every downstream experiment.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import XMLParseError
from repro.xmlmodel.node import XMLNode

__all__ = ["parse_xml", "parse_xml_file"]

_NAME_PATTERN = re.compile(r"[A-Za-z_][\w.\-]*")
_ENTITY_MAP = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}


def parse_xml(text: str) -> XMLNode:
    """Parse an XML document string and return its root element node.

    Raises
    ------
    XMLParseError
        If the document is not well formed.
    """
    parser = _Parser(text)
    return parser.parse_document()


def parse_xml_file(path: Union[str, Path]) -> XMLNode:
    """Parse the XML document stored at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read())


class _Parser:
    """Recursive-descent parser over a character buffer."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def parse_document(self) -> XMLNode:
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self.pos != self.length:
            raise XMLParseError(
                f"unexpected content after document element at offset {self.pos}",
                position=self.pos,
            )
        root.relabel()
        return root

    # ------------------------------------------------------------------ #
    # Prolog / misc
    # ------------------------------------------------------------------ #
    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        while self.pos < self.length and self.text.startswith("<", self.pos):
            if self.text.startswith("<?", self.pos):
                self._skip_until("?>")
            elif self.text.startswith("<!--", self.pos):
                self._skip_until("-->")
            elif self.text.startswith("<!DOCTYPE", self.pos):
                self._skip_doctype()
            else:
                break
            self._skip_whitespace()
        if self.pos >= self.length:
            raise XMLParseError("document has no root element", position=self.pos)

    def _skip_misc(self) -> None:
        self._skip_whitespace()
        while self.pos < self.length:
            if self.text.startswith("<?", self.pos):
                self._skip_until("?>")
            elif self.text.startswith("<!--", self.pos):
                self._skip_until("-->")
            else:
                break
            self._skip_whitespace()

    def _skip_doctype(self) -> None:
        # Skip "<!DOCTYPE ... >" allowing a bracketed internal subset.
        depth = 0
        start = self.pos
        while self.pos < self.length:
            char = self.text[self.pos]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == ">" and depth <= 0:
                self.pos += 1
                return
            self.pos += 1
        raise XMLParseError("unterminated DOCTYPE declaration", position=start)

    # ------------------------------------------------------------------ #
    # Elements
    # ------------------------------------------------------------------ #
    def _parse_element(self) -> XMLNode:
        if not self.text.startswith("<", self.pos):
            raise XMLParseError(f"expected '<' at offset {self.pos}", position=self.pos)
        start = self.pos
        self.pos += 1
        tag = self._parse_name()
        attributes = self._parse_attributes()
        self._skip_whitespace()
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            return XMLNode.element(tag, attributes)
        if not self.text.startswith(">", self.pos):
            raise XMLParseError(f"malformed start tag <{tag}> at offset {start}", position=start)
        self.pos += 1
        node = XMLNode.element(tag, attributes)
        self._parse_content(node)
        self._parse_end_tag(tag)
        return node

    def _parse_content(self, node: XMLNode) -> None:
        buffer: List[str] = []

        def flush_text() -> None:
            if buffer:
                text = "".join(buffer)
                if text.strip():
                    node.append_child(XMLNode.text_node(text.strip()))
                buffer.clear()

        while self.pos < self.length:
            if self.text.startswith("</", self.pos):
                flush_text()
                return
            if self.text.startswith("<!--", self.pos):
                flush_text()
                self._skip_until("-->")
                continue
            if self.text.startswith("<![CDATA[", self.pos):
                buffer.append(self._parse_cdata())
                continue
            if self.text.startswith("<?", self.pos):
                flush_text()
                self._skip_until("?>")
                continue
            if self.text.startswith("<", self.pos):
                flush_text()
                node.append_child(self._parse_element())
                continue
            buffer.append(self._parse_char_data())
        raise XMLParseError(f"unterminated element <{node.tag}>", position=self.pos)

    def _parse_end_tag(self, expected: str) -> None:
        start = self.pos
        if not self.text.startswith("</", self.pos):
            raise XMLParseError(f"expected closing tag for <{expected}>", position=start)
        self.pos += 2
        tag = self._parse_name()
        self._skip_whitespace()
        if not self.text.startswith(">", self.pos):
            raise XMLParseError(f"malformed closing tag </{tag}>", position=start)
        self.pos += 1
        if tag != expected:
            raise XMLParseError(
                f"mismatched closing tag: expected </{expected}>, found </{tag}>",
                position=start,
            )

    # ------------------------------------------------------------------ #
    # Lexical pieces
    # ------------------------------------------------------------------ #
    def _parse_name(self) -> str:
        match = _NAME_PATTERN.match(self.text, self.pos)
        if match is None:
            raise XMLParseError(f"expected a name at offset {self.pos}", position=self.pos)
        self.pos = match.end()
        return match.group(0)

    def _parse_attributes(self) -> Dict[str, str]:
        attributes: Dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self.pos >= self.length:
                raise XMLParseError("unterminated start tag", position=self.pos)
            if self.text[self.pos] in (">", "/"):
                return attributes
            name = self._parse_name()
            self._skip_whitespace()
            if not self.text.startswith("=", self.pos):
                raise XMLParseError(f"attribute {name!r} missing '='", position=self.pos)
            self.pos += 1
            self._skip_whitespace()
            attributes[name] = self._parse_attribute_value()

    def _parse_attribute_value(self) -> str:
        if self.pos >= self.length or self.text[self.pos] not in ("'", '"'):
            raise XMLParseError("attribute value must be quoted", position=self.pos)
        quote = self.text[self.pos]
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end == -1:
            raise XMLParseError("unterminated attribute value", position=self.pos)
        raw = self.text[self.pos:end]
        self.pos = end + 1
        return _decode_entities(raw, self.pos)

    def _parse_char_data(self) -> str:
        end = self.text.find("<", self.pos)
        if end == -1:
            end = self.length
        raw = self.text[self.pos:end]
        start = self.pos
        self.pos = end
        return _decode_entities(raw, start)

    def _parse_cdata(self) -> str:
        start = self.pos + len("<![CDATA[")
        end = self.text.find("]]>", start)
        if end == -1:
            raise XMLParseError("unterminated CDATA section", position=self.pos)
        self.pos = end + 3
        return self.text[start:end]

    # ------------------------------------------------------------------ #
    # Low-level helpers
    # ------------------------------------------------------------------ #
    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def _skip_until(self, terminator: str) -> None:
        end = self.text.find(terminator, self.pos)
        if end == -1:
            raise XMLParseError(f"unterminated construct (missing {terminator!r})", position=self.pos)
        self.pos = end + len(terminator)


def _decode_entities(raw: str, position: int) -> str:
    """Replace entity and character references in character data."""
    if "&" not in raw:
        return raw
    out: List[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char != "&":
            out.append(char)
            index += 1
            continue
        end = raw.find(";", index)
        if end == -1:
            raise XMLParseError("unterminated entity reference", position=position + index)
        name = raw[index + 1:end]
        out.append(_decode_entity_name(name, position + index))
        index = end + 1
    return "".join(out)


def _decode_entity_name(name: str, position: int) -> str:
    if name in _ENTITY_MAP:
        return _ENTITY_MAP[name]
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError as exc:
            raise XMLParseError(f"bad character reference &{name};", position=position) from exc
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError as exc:
            raise XMLParseError(f"bad character reference &{name};", position=position) from exc
    raise XMLParseError(f"unknown entity &{name};", position=position)
