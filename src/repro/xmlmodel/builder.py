"""Programmatic construction of XML trees.

The synthetic dataset generators build documents node by node; the
:class:`TreeBuilder` gives them a small, stack-based API so that generator code
reads like the document structure it produces::

    builder = TreeBuilder("product")
    with builder.element("reviews"):
        with builder.element("review"):
            builder.leaf("rating", "5")
    root = builder.finish()

The :func:`element` and :func:`text_element` helpers cover the simpler cases of
building subtrees from nested literals.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Union

from repro.errors import ReproError
from repro.xmlmodel.node import XMLNode

__all__ = ["TreeBuilder", "element", "text_element"]

_ChildSpec = Union[XMLNode, str]


class TreeBuilder:
    """Stack-based builder for :class:`XMLNode` trees."""

    def __init__(self, root_tag: str, attributes: Optional[Dict[str, str]] = None):
        self._root = XMLNode.element(root_tag, attributes)
        self._stack = [self._root]
        self._finished = False

    @property
    def current(self) -> XMLNode:
        """The element that new children are currently appended to."""
        return self._stack[-1]

    @contextmanager
    def element(self, tag: str, attributes: Optional[Dict[str, str]] = None) -> Iterator[XMLNode]:
        """Open an element as a context manager; children added inside nest under it."""
        node = self.start(tag, attributes)
        try:
            yield node
        finally:
            self.end()

    def start(self, tag: str, attributes: Optional[Dict[str, str]] = None) -> XMLNode:
        """Open an element without a context manager (pair with :meth:`end`)."""
        self._check_open()
        node = self.current.add_element(tag, attributes)
        self._stack.append(node)
        return node

    def end(self) -> None:
        """Close the most recently opened element."""
        self._check_open()
        if len(self._stack) == 1:
            raise ReproError("cannot close the root element with end(); call finish()")
        self._stack.pop()

    def leaf(self, tag: str, value: object, attributes: Optional[Dict[str, str]] = None) -> XMLNode:
        """Append ``<tag>value</tag>`` under the current element."""
        self._check_open()
        node = self.current.add_element(tag, attributes)
        node.add_text(str(value))
        return node

    def text(self, value: object) -> XMLNode:
        """Append a text node under the current element."""
        self._check_open()
        return self.current.add_text(str(value))

    def subtree(self, node: XMLNode) -> XMLNode:
        """Append a detached subtree under the current element."""
        self._check_open()
        return self.current.append_child(node)

    def finish(self) -> XMLNode:
        """Close the builder and return the completed, labelled root."""
        self._check_open()
        if len(self._stack) != 1:
            raise ReproError(f"{len(self._stack) - 1} element(s) left open at finish()")
        self._finished = True
        self._root.relabel()
        return self._root

    def _check_open(self) -> None:
        if self._finished:
            raise ReproError("builder has already been finished")


def element(tag: str, *children: _ChildSpec, attributes: Optional[Dict[str, str]] = None) -> XMLNode:
    """Build an element from nested literals.

    String children become text nodes; node children are attached as given.

    Examples
    --------
    >>> tree = element("product", element("name", "TomTom Go 630"))
    >>> tree.find_child("name").text_content()
    'TomTom Go 630'
    """
    node = XMLNode.element(tag, attributes)
    for child in children:
        if isinstance(child, XMLNode):
            node.append_child(child)
        else:
            node.add_text(str(child))
    node.relabel()
    return node


def text_element(tag: str, value: object) -> XMLNode:
    """Build ``<tag>value</tag>`` as a detached subtree."""
    return element(tag, str(value))
