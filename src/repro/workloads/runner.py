"""Workload execution: search, extract features, run DFS algorithms, measure.

The runner produces one :class:`QueryMeasurement` per (query, algorithm) pair,
holding the DoD and the construction time — exactly the two series Figure 4
plots — plus context (result count, feature-type counts) that the experiment
reports include so that the synthetic-vs-paper comparison is interpretable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import DFSConfig
from repro.core.generator import DFSGenerator
from repro.errors import ExperimentError
from repro.features.extractor import FeatureExtractor
from repro.features.statistics import ResultFeatures
from repro.search.engine import SearchEngine
from repro.storage.corpus import Corpus
from repro.workloads.queries import QuerySpec, Workload

__all__ = ["QueryMeasurement", "WorkloadRunner"]


@dataclass(frozen=True)
class QueryMeasurement:
    """The measurement of one algorithm on one query.

    Attributes
    ----------
    query_name:
        Workload query identifier (``"QM1"``...).
    algorithm:
        DFS construction algorithm name.
    num_results:
        How many results were compared.
    total_feature_types:
        Sum of feature-type counts over the compared results (problem size).
    dod:
        Total degree of differentiation achieved.
    construction_seconds:
        Wall-clock time of DFS construction only (the quantity of Figure 4(b)).
    search_seconds:
        Wall-clock time of search plus feature extraction (context only).
    """

    query_name: str
    algorithm: str
    num_results: int
    total_feature_types: int
    dod: int
    construction_seconds: float
    search_seconds: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary form used by reports."""
        return {
            "query": self.query_name,
            "algorithm": self.algorithm,
            "results": self.num_results,
            "feature_types": self.total_feature_types,
            "dod": self.dod,
            "time_s": round(self.construction_seconds, 6),
            "search_s": round(self.search_seconds, 6),
        }


class WorkloadRunner:
    """Runs a workload's queries against its corpus for a set of algorithms."""

    def __init__(
        self,
        workload: Workload,
        config: Optional[DFSConfig] = None,
        corpus: Optional[Corpus] = None,
    ):
        self.workload = workload
        self.config = config or DFSConfig()
        self.corpus = corpus if corpus is not None else workload.build_corpus()
        self.engine = SearchEngine(self.corpus)
        self.extractor = FeatureExtractor(statistics=self.corpus.statistics)
        self.generator = DFSGenerator(self.config)
        self._feature_cache: Dict[str, List[ResultFeatures]] = {}

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def result_features(self, spec: QuerySpec) -> List[ResultFeatures]:
        """Search one query and extract features for its results (cached)."""
        if spec.name not in self._feature_cache:
            result_set = self.engine.search(spec.query(), limit=spec.max_results)
            features = [self.extractor.extract(result) for result in result_set]
            self._feature_cache[spec.name] = features
        return self._feature_cache[spec.name]

    def run_query(self, spec: QuerySpec, algorithm: str) -> QueryMeasurement:
        """Run one algorithm on one query and return its measurement.

        Raises
        ------
        ExperimentError
            If the query yields fewer than two results (nothing to compare) —
            a sign the corpus or query definitions are misconfigured.
        """
        search_start = time.perf_counter()
        features = self.result_features(spec)
        search_elapsed = time.perf_counter() - search_start

        if len(features) < 2:
            raise ExperimentError(
                f"query {spec.name!r} ({spec.text!r}) returned {len(features)} result(s); "
                "need at least two to measure differentiation"
            )
        outcome = self.generator.generate(features, algorithm=algorithm)
        return QueryMeasurement(
            query_name=spec.name,
            algorithm=algorithm,
            num_results=len(features),
            total_feature_types=sum(len(result) for result in features),
            dod=outcome.dod,
            construction_seconds=outcome.elapsed_seconds,
            search_seconds=search_elapsed,
        )

    def run(self, algorithms: Sequence[str] = ("single_swap", "multi_swap")) -> List[QueryMeasurement]:
        """Run every workload query with every algorithm."""
        measurements: List[QueryMeasurement] = []
        for spec in self.workload.queries:
            for algorithm in algorithms:
                measurements.append(self.run_query(spec, algorithm))
        return measurements
