"""Workload definitions: named keyword queries per dataset.

The paper does not list the text of QM1-QM8; following the substitution policy
they are defined here as eight keyword queries over the synthetic IMDB corpus
that mirror the character of typical exploratory movie searches (a genre plus a
plot keyword), each returning a healthy handful of results.  The product and
outdoor workloads reproduce the queries the demo walkthrough names explicitly
("TomTom, GPS" and "men, jackets") plus companions in the same spirit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.search.query import KeywordQuery
from repro.storage.corpus import Corpus

__all__ = [
    "QuerySpec",
    "Workload",
    "IMDB_QUERIES",
    "PRODUCT_QUERIES",
    "OUTDOOR_QUERIES",
    "imdb_workload",
    "product_reviews_workload",
    "outdoor_workload",
]


@dataclass(frozen=True)
class QuerySpec:
    """One named query of a workload.

    Attributes
    ----------
    name:
        Short identifier used on figure axes (``"QM1"``, ...).
    text:
        The raw keyword query text.
    max_results:
        Optional cap on how many results of the query are compared (``None``
        compares all results, as the Figure 4 experiment does).
    """

    name: str
    text: str
    max_results: Optional[int] = None

    def query(self) -> KeywordQuery:
        """Parse the query text."""
        return KeywordQuery.parse(self.text)


@dataclass
class Workload:
    """A named set of queries bound to a corpus factory."""

    name: str
    queries: List[QuerySpec]
    corpus_factory: Callable[[], Corpus]

    def __post_init__(self) -> None:
        if not self.queries:
            raise WorkloadError(f"workload {self.name!r} has no queries")
        names = [spec.name for spec in self.queries]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate query names in workload {self.name!r}: {names}")

    def query_names(self) -> List[str]:
        """The query names, in workload order."""
        return [spec.name for spec in self.queries]

    def build_corpus(self) -> Corpus:
        """Materialise the corpus this workload runs against."""
        return self.corpus_factory()


IMDB_QUERIES: Tuple[QuerySpec, ...] = (
    QuerySpec("QM1", "action revenge", max_results=8),
    QuerySpec("QM2", "comedy family", max_results=8),
    QuerySpec("QM3", "drama war", max_results=8),
    QuerySpec("QM4", "thriller undercover", max_results=8),
    QuerySpec("QM5", "romance betrayal", max_results=8),
    QuerySpec("QM6", "horror monster", max_results=8),
    QuerySpec("QM7", "science fiction space", max_results=8),
    QuerySpec("QM8", "western redemption", max_results=8),
)
"""The eight IMDB queries of Figure 4 (QM1-QM8).

The synthetic corpus returns more matches per query than the paper's IMDB
extract did, so each query compares its top eight results; this keeps the
number of result pairs (and therefore the DoD magnitude) in the same regime as
Figure 4 while still comparing "all" results a user would realistically select.
"""


PRODUCT_QUERIES: Tuple[QuerySpec, ...] = (
    QuerySpec("QP1", "tomtom gps", max_results=4),
    QuerySpec("QP2", "garmin gps", max_results=4),
    QuerySpec("QP3", "samsung mobile phone", max_results=4),
    QuerySpec("QP4", "canon digital camera", max_results=4),
)
"""Product Reviews queries; QP1 is the paper's running example {TomTom, GPS}."""


OUTDOOR_QUERIES: Tuple[QuerySpec, ...] = (
    QuerySpec("QR1", "men jackets", max_results=4),
    QuerySpec("QR2", "women footwear", max_results=4),
    QuerySpec("QR3", "mountain bike", max_results=4),
)
"""Outdoor Retailer queries; QR1 is the demo's "men, jackets" walkthrough."""


def imdb_workload(corpus_factory: Optional[Callable[[], Corpus]] = None) -> Workload:
    """The Figure 4 workload: QM1-QM8 over the IMDB corpus."""
    from repro.datasets.imdb import generate_imdb_corpus

    return Workload(
        name="imdb",
        queries=list(IMDB_QUERIES),
        corpus_factory=corpus_factory or generate_imdb_corpus,
    )


def product_reviews_workload(corpus_factory: Optional[Callable[[], Corpus]] = None) -> Workload:
    """The Product Reviews workload (demo scenario E3/E4)."""
    from repro.datasets.product_reviews import generate_product_reviews_corpus

    return Workload(
        name="product_reviews",
        queries=list(PRODUCT_QUERIES),
        corpus_factory=corpus_factory or generate_product_reviews_corpus,
    )


def outdoor_workload(corpus_factory: Optional[Callable[[], Corpus]] = None) -> Workload:
    """The Outdoor Retailer workload (demo scenario E5)."""
    from repro.datasets.outdoor_retailer import generate_outdoor_corpus

    return Workload(
        name="outdoor_retailer",
        queries=list(OUTDOOR_QUERIES),
        corpus_factory=corpus_factory or generate_outdoor_corpus,
    )
