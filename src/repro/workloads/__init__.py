"""Query workloads used by the experiments.

The Figure 4 evaluation runs eight keyword queries, QM1-QM8, over the IMDB
movie corpus; the demo scenarios use product and outdoor-retailer queries.
Workload definitions (query strings, per-query DFS parameters) live in
:mod:`~repro.workloads.queries`; :mod:`~repro.workloads.runner` executes a
workload end to end (search → feature extraction → DFS generation for every
algorithm under test) and produces the measurement records the figure and
ablation harnesses consume.
"""

from repro.workloads.queries import (
    IMDB_QUERIES,
    OUTDOOR_QUERIES,
    PRODUCT_QUERIES,
    QuerySpec,
    Workload,
    imdb_workload,
    outdoor_workload,
    product_reviews_workload,
)
from repro.workloads.runner import QueryMeasurement, WorkloadRunner

__all__ = [
    "QuerySpec",
    "Workload",
    "IMDB_QUERIES",
    "PRODUCT_QUERIES",
    "OUTDOOR_QUERIES",
    "imdb_workload",
    "product_reviews_workload",
    "outdoor_workload",
    "QueryMeasurement",
    "WorkloadRunner",
]
