"""eXtract-style query-biased snippets.

The snippet of a result is a size-bounded selection of its features that
favours (a) features containing query keywords and (b) frequently occurring
features — the two signals eXtract combines.  Crucially, the selection looks at
one result at a time; it never coordinates with the other results, which is
precisely why snippets compare poorly (the paper's Figure 1 discussion).

To make the baseline directly comparable with DFSs, a snippet is materialised
as a :class:`~repro.core.dfs.DFS` over the same feature rows, so the DoD of a
set of snippets can be computed with the very same
:func:`~repro.core.dod.total_dod` objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import total_dod
from repro.features.statistics import FeatureStatistics, ResultFeatures
from repro.search.query import KeywordQuery
from repro.storage.tokenizer import tokenize

__all__ = ["Snippet", "SnippetGenerator", "snippet_dod"]


@dataclass
class Snippet:
    """The snippet of one result: a size-bounded list of its feature rows."""

    result_id: str
    rows: List[FeatureStatistics] = field(default_factory=list)

    def as_dfs(self, source: ResultFeatures) -> DFS:
        """View the snippet as a DFS over the same source rows."""
        return DFS(source, self.rows)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class SnippetGenerator:
    """Generates query-biased snippets.

    Parameters
    ----------
    size_limit:
        Maximum number of features per snippet (mirrors the DFS size bound so
        baselines are compared at equal budget).
    query_weight:
        How strongly query-keyword matches are boosted relative to raw
        occurrence frequency.  eXtract biases snippets towards the query; a
        weight of 0 degenerates to a pure most-frequent-features snippet.
    """

    size_limit: int = 5
    query_weight: float = 2.0

    def generate(self, features: ResultFeatures, query: Optional[KeywordQuery] = None) -> Snippet:
        """Build the snippet of one result."""
        scored: List[tuple] = []
        for row in features:
            score = float(row.occurrences)
            if query is not None and self._matches_query(row, query):
                score *= 1.0 + self.query_weight
            scored.append((score, str(row.feature), row))
        scored.sort(key=lambda item: (-item[0], item[1]))
        chosen = [row for _score, _key, row in scored[: self.size_limit]]
        return Snippet(result_id=features.result_id, rows=self._make_valid(features, chosen))

    def generate_all(
        self,
        features_list: Sequence[ResultFeatures],
        query: Optional[KeywordQuery] = None,
    ) -> List[Snippet]:
        """Build snippets for a list of results, independently per result."""
        return [self.generate(features, query) for features in features_list]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _matches_query(row: FeatureStatistics, query: KeywordQuery) -> bool:
        haystack = set(tokenize(f"{row.feature.attribute} {row.feature.value}"))
        return any(keyword in haystack for keyword in query)

    @staticmethod
    def _make_valid(features: ResultFeatures, chosen: List[FeatureStatistics]) -> List[FeatureStatistics]:
        """Repair the query-biased pick into a valid (significance-prefix) set.

        The query bias may jump over a more frequent feature of the same
        entity; since the DoD comparison uses the DFS machinery (which expects
        valid selections), the snippet keeps its budget per entity but fills it
        in significance order.  This mirrors eXtract's behaviour of showing the
        dominant information of the result.
        """
        budget_per_entity: dict = {}
        for row in chosen:
            budget_per_entity[row.feature.entity] = budget_per_entity.get(row.feature.entity, 0) + 1
        repaired: List[FeatureStatistics] = []
        for entity, budget in budget_per_entity.items():
            repaired.extend(features.significance_order(entity)[:budget])
        return repaired


def snippet_dod(
    features_list: Sequence[ResultFeatures],
    query: Optional[KeywordQuery] = None,
    config: Optional[DFSConfig] = None,
    query_weight: float = 2.0,
) -> int:
    """Total DoD achieved by per-result snippets (the baseline number).

    The snippet size bound is taken from ``config.size_limit`` so the baseline
    and XSACT's DFSs are compared at the same budget.
    """
    config = config or DFSConfig()
    generator = SnippetGenerator(size_limit=config.size_limit, query_weight=query_weight)
    snippets = generator.generate_all(features_list, query)
    dfss = [
        snippet.as_dfs(features)
        for snippet, features in zip(snippets, features_list)
    ]
    return total_dod(DFSSet(dfss), config)
