"""Query-biased snippet generation (the eXtract-style baseline).

The paper contrasts XSACT with result snippets "as supported by every web
search engine and some structured data search engines", citing eXtract [2]:
snippets highlight the most frequently occurring information in each result,
but because they are generated per result in isolation they are "generally not
comparable".  This package reproduces that baseline so the comparison can be
measured: a snippet is a small set of features chosen by a blend of occurrence
frequency and query relevance, independently per result, and the experiments
report the DoD achieved by snippets next to the DoD achieved by XSACT's DFSs.
"""

from repro.snippets.extract import Snippet, SnippetGenerator, snippet_dod

__all__ = ["Snippet", "SnippetGenerator", "snippet_dod"]
