"""repro — a reproduction of XSACT (VLDB 2010).

XSACT ("A Comparison Tool for Structured Search Results", Liu et al., VLDB 2010
demo) helps users *compare* keyword-search results over structured data: for a
set of selected results it generates one Differentiation Feature Set (DFS) per
result — a small, faithful selection of features chosen so that, jointly, the
DFSs maximise the degree of differentiation (DoD) between the results — and
lays them out as a comparison table.

This package implements the complete system described by the paper:

* an XML data model, storage layer and keyword search engine (the XSeek
  substrate XSACT runs on),
* the result processor (entity identification and feature extraction),
* the DFS construction algorithms (single-swap and multi-swap local
  optimality) plus baselines,
* the comparison-table front end and an end-to-end pipeline,
* synthetic substitutes for the paper's datasets and the Figure 4 evaluation
  harness.

Quickstart
----------
>>> from repro import Xsact, generate_product_reviews_corpus
>>> corpus = generate_product_reviews_corpus()
>>> xsact = Xsact(corpus)
>>> outcome = xsact.search_and_compare("tomtom gps", top=2)
>>> print(outcome.to_text())  # doctest: +SKIP
"""

from repro.comparison import ComparisonOutcome, ComparisonTable, Xsact
from repro.core import (
    ALGORITHMS,
    DFS,
    DFSConfig,
    DFSGenerator,
    DFSProblem,
    DFSSet,
    GenerationOutcome,
    exhaustive_dfs,
    greedy_dfs,
    multi_swap_dfs,
    pairwise_dod,
    random_dfs,
    single_swap_dfs,
    top_significance_dfs,
    total_dod,
)
from repro.datasets import (
    ImdbConfig,
    OutdoorRetailerConfig,
    ProductReviewsConfig,
    generate_imdb_corpus,
    generate_outdoor_corpus,
    generate_product_reviews_corpus,
)
from repro.errors import ReproError
from repro.features import Feature, FeatureExtractor, FeatureStatistics, FeatureType, ResultFeatures
from repro.search import (
    KeywordQuery,
    SearchEngine,
    SearchResult,
    SearchResultSet,
    available_semantics,
    register_semantics,
    unregister_semantics,
)
from repro.service import (
    CompareRequest,
    CompareResponse,
    ResultItem,
    SearchRequest,
    SearchResponse,
    SearchService,
)
from repro.snippets import SnippetGenerator, snippet_dod
from repro.storage import Corpus, DocumentStore
from repro.xmlmodel import XMLNode, parse_xml

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Pipeline / front end
    "Xsact",
    "ComparisonOutcome",
    "ComparisonTable",
    # Core DFS machinery
    "DFSConfig",
    "DFS",
    "DFSSet",
    "DFSProblem",
    "DFSGenerator",
    "GenerationOutcome",
    "ALGORITHMS",
    "total_dod",
    "pairwise_dod",
    "top_significance_dfs",
    "random_dfs",
    "greedy_dfs",
    "single_swap_dfs",
    "multi_swap_dfs",
    "exhaustive_dfs",
    # Features
    "Feature",
    "FeatureType",
    "FeatureStatistics",
    "ResultFeatures",
    "FeatureExtractor",
    # Search substrate
    "KeywordQuery",
    "SearchEngine",
    "SearchResult",
    "SearchResultSet",
    "register_semantics",
    "unregister_semantics",
    "available_semantics",
    # Service layer
    "SearchService",
    "SearchRequest",
    "SearchResponse",
    "ResultItem",
    "CompareRequest",
    "CompareResponse",
    # Storage / XML substrate
    "Corpus",
    "DocumentStore",
    "XMLNode",
    "parse_xml",
    # Baselines
    "SnippetGenerator",
    "snippet_dod",
    # Datasets
    "ProductReviewsConfig",
    "generate_product_reviews_corpus",
    "OutdoorRetailerConfig",
    "generate_outdoor_corpus",
    "ImdbConfig",
    "generate_imdb_corpus",
    # Errors
    "ReproError",
]
