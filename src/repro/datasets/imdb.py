"""Synthetic IMDB-style movie corpus (substitute for the IMDB plain-text dump).

The paper's Figure 4 experiment runs eight keyword queries (QM1-QM8) over "a
movie data set extracted from IMDB".  The original dump
(``ftp://ftp.sunet.se/pub/tv+movies/imdb/``) is no longer distributed in that
form, so this module generates a synthetic corpus with the same structural
ingredients the dump provides per title:

* flat metadata: title, year, rating, votes, certificate, runtime, studio;
* multi-valued metadata: genres, plot keywords, countries, languages;
* a cast of actors (a repeating sub-entity with name / character / billing);
* an awards list (a repeating sub-entity with category / outcome / year).

The cast and awards sub-entities give results a non-trivial occurrence-count
structure (different feature types of the same entity have different counts),
which is what makes the validity constraint bite and lets the multi-swap
algorithm's budget allocation outperform single swaps — the effect Figure 4(a)
shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datasets.vocabulary import MovieVocabulary
from repro.errors import DatasetError
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.node import XMLNode

__all__ = ["ImdbConfig", "generate_imdb_corpus"]


@dataclass(frozen=True)
class ImdbConfig:
    """Parameters of the IMDB generator.

    Attributes
    ----------
    num_movies:
        Number of movie documents to generate.
    min_cast / max_cast:
        Range of the cast size per movie.
    max_awards:
        Maximum number of award entries per movie (minimum is zero).
    seed:
        Seed of the generator's private random stream.
    """

    num_movies: int = 200
    min_cast: int = 4
    max_cast: int = 18
    max_awards: int = 8
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_movies < 1:
            raise DatasetError("num_movies must be >= 1")
        if not (1 <= self.min_cast <= self.max_cast):
            raise DatasetError("cast range must satisfy 1 <= min <= max")
        if self.max_awards < 0:
            raise DatasetError("max_awards must be >= 0")


def generate_imdb_corpus(
    config: Optional[ImdbConfig] = None,
    vocabulary: Optional[MovieVocabulary] = None,
) -> Corpus:
    """Generate the IMDB movie corpus (one document per movie)."""
    config = config or ImdbConfig()
    vocabulary = vocabulary or MovieVocabulary()
    rng = random.Random(config.seed)
    store = DocumentStore()

    for movie_number in range(1, config.num_movies + 1):
        doc_id = f"movie_{movie_number:05d}"
        root = _build_movie(movie_number, config, vocabulary, rng)
        store.add(doc_id, root, metadata={"dataset": "imdb"})
    return Corpus(store, name="imdb")


# ---------------------------------------------------------------------- #
# Document construction
# ---------------------------------------------------------------------- #
def _build_movie(
    movie_number: int,
    config: ImdbConfig,
    vocabulary: MovieVocabulary,
    rng: random.Random,
) -> XMLNode:
    title = f"{rng.choice(vocabulary.title_heads)} {rng.choice(vocabulary.title_tails)} {movie_number}"
    genres = rng.sample(list(vocabulary.genres), k=rng.randint(1, 3))
    keywords = rng.sample(list(vocabulary.keywords), k=rng.randint(3, 8))

    builder = TreeBuilder("movie")
    builder.leaf("title", title)
    builder.leaf("year", rng.randint(1950, 2009))
    builder.leaf("rating", f"{rng.uniform(3.0, 9.5):.1f}")
    builder.leaf("votes", rng.randint(50, 250_000))
    builder.leaf("certificate", rng.choice(vocabulary.certificates))
    builder.leaf("runtime_minutes", rng.randint(70, 190))
    builder.leaf("studio", rng.choice(vocabulary.studios))
    builder.leaf("color", rng.choice(["color", "black_and_white"]))

    with builder.element("genres"):
        for genre in genres:
            builder.leaf("genre", genre)
    with builder.element("keywords"):
        for keyword in keywords:
            builder.leaf("keyword", keyword)
    with builder.element("countries"):
        for country in rng.sample(list(vocabulary.countries), k=rng.randint(1, 3)):
            builder.leaf("country", country)
    with builder.element("languages"):
        for language in rng.sample(list(vocabulary.languages), k=rng.randint(1, 2)):
            builder.leaf("language", language)
    with builder.element("directors"):
        builder.leaf("director", _person_name(vocabulary, rng))

    _build_cast(builder, config, vocabulary, rng)
    _build_awards(builder, config, rng)
    return builder.finish()


def _build_cast(
    builder: TreeBuilder,
    config: ImdbConfig,
    vocabulary: MovieVocabulary,
    rng: random.Random,
) -> None:
    cast_size = rng.randint(config.min_cast, config.max_cast)
    # A per-movie skew in how many cast members are credited as leads vs
    # supporting vs uncredited: this is the count-bearing attribute of the
    # actor entity (different movies have very different lead/support ratios).
    lead_fraction = rng.uniform(0.1, 0.6)
    with builder.element("cast"):
        for billing in range(1, cast_size + 1):
            with builder.element("actor"):
                builder.leaf("actor_name", _person_name(vocabulary, rng))
                builder.leaf("character", f"{rng.choice(vocabulary.title_tails)} {billing}")
                builder.leaf("billing", billing)
                if rng.random() < lead_fraction:
                    credit = "lead"
                elif rng.random() < 0.8:
                    credit = "supporting"
                else:
                    credit = "uncredited"
                builder.leaf("credit", credit)


def _build_awards(builder: TreeBuilder, config: ImdbConfig, rng: random.Random) -> None:
    award_count = rng.randint(0, config.max_awards)
    if award_count == 0:
        return
    win_probability = rng.uniform(0.1, 0.7)
    categories = (
        "best_picture",
        "best_director",
        "best_actor",
        "best_actress",
        "best_screenplay",
        "best_score",
    )
    with builder.element("awards"):
        for _ in range(award_count):
            with builder.element("award"):
                builder.leaf("award_category", rng.choice(categories))
                builder.leaf("outcome", "won" if rng.random() < win_probability else "nominated")
                builder.leaf("award_year", rng.randint(1950, 2010))


def _person_name(vocabulary: MovieVocabulary, rng: random.Random) -> str:
    return f"{rng.choice(vocabulary.first_names)} {rng.choice(vocabulary.last_names)}"
