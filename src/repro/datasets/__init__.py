"""Synthetic datasets standing in for the paper's crawled corpora.

The demo uses three real data sources that are no longer obtainable (the
buzzillions.com *Product Reviews* crawl, the REI.com *Outdoor Retailer* crawl,
and the IMDB plain-text dump used for Figure 4).  Per the substitution policy
in DESIGN.md, each is replaced by a seeded synthetic generator that reproduces
the *schema* and the *statistical shape* that drive XSACT's behaviour: skewed
feature-occurrence distributions, tens of feature types per result, and result
populations large enough that comparison by hand would be tedious — which is
the paper's motivation in the first place.

All generators are deterministic given their seed, so experiments and tests are
reproducible bit for bit.
"""

from repro.datasets.imdb import ImdbConfig, generate_imdb_corpus
from repro.datasets.outdoor_retailer import OutdoorRetailerConfig, generate_outdoor_corpus
from repro.datasets.product_reviews import ProductReviewsConfig, generate_product_reviews_corpus
from repro.datasets.vocabulary import ProductVocabulary, MovieVocabulary, OutdoorVocabulary

__all__ = [
    "ProductReviewsConfig",
    "generate_product_reviews_corpus",
    "OutdoorRetailerConfig",
    "generate_outdoor_corpus",
    "ImdbConfig",
    "generate_imdb_corpus",
    "ProductVocabulary",
    "MovieVocabulary",
    "OutdoorVocabulary",
]
