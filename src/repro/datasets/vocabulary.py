"""Vocabularies shared by the synthetic dataset generators.

The word pools are modelled on the examples the paper gives: GPS / phone /
camera products with reviewer opinions (pros, cons, best uses), outdoor brands
with product categories and technical attributes, and IMDB-style movies with
genres, keywords, cast and production metadata.  Keeping them in one module
makes the generators small and lets tests assert that query keywords (e.g.
"tomtom", "gps", "jackets") actually occur in the generated corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["ProductVocabulary", "OutdoorVocabulary", "MovieVocabulary"]


@dataclass(frozen=True)
class ProductVocabulary:
    """Word pools for the Product Reviews dataset (buzzillions substitute)."""

    categories: Tuple[str, ...] = ("GPS", "mobile phone", "digital camera")

    brands: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "GPS": ("TomTom", "Garmin", "Magellan", "Navigon"),
            "mobile phone": ("Nokia", "Motorola", "Samsung", "BlackBerry"),
            "digital camera": ("Canon", "Nikon", "Sony", "Olympus"),
        }
    )

    model_lines: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "GPS": ("Go", "Nuvi", "RoadMate", "One"),
            "mobile phone": ("Curve", "Razr", "Galaxy", "Lumia"),
            "digital camera": ("PowerShot", "Coolpix", "Cybershot", "Stylus"),
        }
    )

    suffixes: Tuple[str, ...] = ("Portable", "BOX", "Wide", "Traffic", "Deluxe", "Slim")

    pros: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "GPS": (
                "compact",
                "easy_to_read",
                "easy_to_setup",
                "acquires_satellites_quickly",
                "large_screen",
                "accurate_directions",
                "good_value",
                "spoken_street_names",
                "fast_routing",
                "long_battery_life",
            ),
            "mobile phone": (
                "compact",
                "good_reception",
                "long_battery_life",
                "large_screen",
                "easy_to_use",
                "good_camera",
                "loud_speaker",
                "sturdy_build",
                "fast_interface",
                "good_value",
            ),
            "digital camera": (
                "compact",
                "sharp_pictures",
                "fast_shutter",
                "good_low_light",
                "large_screen",
                "easy_to_use",
                "long_battery_life",
                "good_value",
                "image_stabilisation",
                "powerful_zoom",
            ),
        }
    )

    cons: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "GPS": (
                "short_battery_life",
                "slow_recalculation",
                "outdated_maps",
                "weak_mount",
                "glare_in_sunlight",
                "expensive_updates",
            ),
            "mobile phone": (
                "short_battery_life",
                "dropped_calls",
                "small_keys",
                "slow_interface",
                "poor_camera",
                "fragile_screen",
            ),
            "digital camera": (
                "short_battery_life",
                "slow_startup",
                "noisy_images",
                "weak_flash",
                "small_buttons",
                "bulky_body",
            ),
        }
    )

    best_uses: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "GPS": ("auto", "travel", "hiking", "commuting", "delivery"),
            "mobile phone": ("business", "travel", "texting", "music", "photos"),
            "digital camera": ("travel", "family", "sports", "landscapes", "events"),
        }
    )

    reviewer_types: Tuple[str, ...] = (
        "casual_user",
        "power_user",
        "first_time_buyer",
        "professional",
        "frequent_traveler",
    )

    locations: Tuple[str, ...] = (
        "Phoenix",
        "Seattle",
        "Austin",
        "Boston",
        "Denver",
        "Chicago",
        "Portland",
        "Atlanta",
    )

    first_names: Tuple[str, ...] = (
        "Alex",
        "Jordan",
        "Taylor",
        "Morgan",
        "Casey",
        "Riley",
        "Jamie",
        "Avery",
        "Quinn",
        "Dana",
    )


@dataclass(frozen=True)
class OutdoorVocabulary:
    """Word pools for the Outdoor Retailer dataset (REI substitute)."""

    brands: Tuple[str, ...] = (
        "Marmot",
        "Columbia",
        "Patagonia",
        "NorthRidge",
        "Cascade",
        "TrailForge",
    )

    categories: Tuple[str, ...] = ("jackets", "footwear", "bicycles", "tents", "packs")

    subcategories: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "jackets": ("rain_jacket", "insulated_ski_jacket", "softshell", "down_parka", "windbreaker"),
            "footwear": ("hiking_boot", "trail_runner", "approach_shoe", "sandal"),
            "bicycles": ("road_bike", "mountain_bike", "commuter_bike", "gravel_bike"),
            "tents": ("backpacking_tent", "family_tent", "ultralight_tent"),
            "packs": ("daypack", "overnight_pack", "expedition_pack", "hydration_pack"),
        }
    )

    genders: Tuple[str, ...] = ("men", "women", "unisex")

    materials: Tuple[str, ...] = (
        "gore_tex",
        "nylon_ripstop",
        "polyester_fleece",
        "merino_wool",
        "aluminium",
        "carbon_fiber",
    )

    attributes: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "jackets": ("waterproof", "insulated", "breathable", "packable", "hooded", "windproof"),
            "footwear": ("waterproof", "breathable", "lightweight", "high_traction", "wide_fit"),
            "bicycles": ("disc_brakes", "suspension", "tubeless_tires", "electric_assist", "drop_bars"),
            "tents": ("freestanding", "three_season", "four_season", "vestibule", "ultralight"),
            "packs": ("hip_belt", "rain_cover", "hydration_compatible", "frame", "ultralight"),
        }
    )

    features_numeric: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: {
            "bicycles": ("number_of_gears", "wheel_size", "frame_size"),
            "packs": ("volume_liters", "weight_grams"),
            "tents": ("capacity", "weight_grams"),
            "jackets": ("weight_grams",),
            "footwear": ("weight_grams",),
        }
    )


@dataclass(frozen=True)
class MovieVocabulary:
    """Word pools for the IMDB dataset substitute."""

    title_heads: Tuple[str, ...] = (
        "The Last",
        "Return of the",
        "Midnight",
        "Silent",
        "Broken",
        "Golden",
        "Crimson",
        "Endless",
        "Forgotten",
        "Rising",
    )

    title_tails: Tuple[str, ...] = (
        "Horizon",
        "Empire",
        "Voyage",
        "Garden",
        "Detective",
        "Symphony",
        "Frontier",
        "Harvest",
        "Outlaw",
        "Winter",
    )

    genres: Tuple[str, ...] = (
        "drama",
        "comedy",
        "action",
        "thriller",
        "romance",
        "documentary",
        "western",
        "science_fiction",
        "horror",
        "animation",
    )

    keywords: Tuple[str, ...] = (
        "revenge",
        "family",
        "heist",
        "war",
        "friendship",
        "betrayal",
        "road_trip",
        "small_town",
        "courtroom",
        "space",
        "monster",
        "undercover",
        "romown",
        "redemption",
        "survival",
    )

    first_names: Tuple[str, ...] = (
        "James",
        "Maria",
        "Robert",
        "Linda",
        "David",
        "Susan",
        "Carlos",
        "Emma",
        "Viktor",
        "Aiko",
        "Priya",
        "Lars",
    )

    last_names: Tuple[str, ...] = (
        "Stewart",
        "Garcia",
        "Kowalski",
        "Tanaka",
        "Olsen",
        "Moreau",
        "Petrov",
        "Okafor",
        "Silva",
        "Novak",
        "Keller",
        "Brandt",
    )

    countries: Tuple[str, ...] = (
        "USA",
        "France",
        "Japan",
        "Germany",
        "Brazil",
        "India",
        "Sweden",
        "Italy",
    )

    languages: Tuple[str, ...] = (
        "english",
        "french",
        "japanese",
        "german",
        "portuguese",
        "hindi",
        "swedish",
        "italian",
    )

    certificates: Tuple[str, ...] = ("G", "PG", "PG-13", "R")

    studios: Tuple[str, ...] = (
        "Sunrise Pictures",
        "Blue Harbor Films",
        "Northlight Studios",
        "Meridian Entertainment",
        "Cedar Gate Productions",
    )
