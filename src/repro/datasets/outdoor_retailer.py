"""Synthetic Outdoor Retailer corpus (REI.com substitute).

One document per brand.  Each brand has a set of products; each product has a
category, subcategory, gender and a handful of technical attributes (number of
gears, tires, frame material, waterproofing flags, ...), matching the schema
the paper describes for the REI crawl.

The generator gives every brand a *focus*: a preferred subcategory per category
that most of its products fall into (e.g. one jacket brand mostly sells rain
jackets, another mostly insulated ski jackets).  That skew is what the demo's
"men, jackets" walkthrough relies on — the comparison table should reveal the
different focuses of the selected brands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets.vocabulary import OutdoorVocabulary
from repro.errors import DatasetError
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.node import XMLNode

__all__ = ["OutdoorRetailerConfig", "generate_outdoor_corpus"]


@dataclass(frozen=True)
class OutdoorRetailerConfig:
    """Parameters of the Outdoor Retailer generator.

    Attributes
    ----------
    products_per_brand:
        Number of products listed under each brand document.
    focus_strength:
        Probability that a product of the brand's focused category uses the
        brand's preferred subcategory (the remaining probability is spread over
        the other subcategories).  Higher values make brands more sharply
        focused and the comparison table more telling.
    seed:
        Seed of the generator's private random stream.
    """

    products_per_brand: int = 60
    focus_strength: float = 0.7
    seed: int = 7

    def __post_init__(self) -> None:
        if self.products_per_brand < 1:
            raise DatasetError("products_per_brand must be >= 1")
        if not (0.0 < self.focus_strength <= 1.0):
            raise DatasetError("focus_strength must be in (0, 1]")


def generate_outdoor_corpus(
    config: Optional[OutdoorRetailerConfig] = None,
    vocabulary: Optional[OutdoorVocabulary] = None,
) -> Corpus:
    """Generate the Outdoor Retailer corpus (one document per brand)."""
    config = config or OutdoorRetailerConfig()
    vocabulary = vocabulary or OutdoorVocabulary()
    rng = random.Random(config.seed)
    store = DocumentStore()

    for brand_number, brand in enumerate(vocabulary.brands, start=1):
        doc_id = f"brand_{brand_number:03d}"
        root = _build_brand(brand, config, vocabulary, rng)
        store.add(doc_id, root, metadata={"dataset": "outdoor_retailer", "brand": brand})
    return Corpus(store, name="outdoor_retailer")


# ---------------------------------------------------------------------- #
# Document construction
# ---------------------------------------------------------------------- #
def _build_brand(
    brand: str,
    config: OutdoorRetailerConfig,
    vocabulary: OutdoorVocabulary,
    rng: random.Random,
) -> XMLNode:
    # The brand's focus: one preferred subcategory per category.
    focus = {
        category: rng.choice(vocabulary.subcategories[category])
        for category in vocabulary.categories
    }

    builder = TreeBuilder("brand")
    builder.leaf("brand_name", brand)
    builder.leaf("founded", rng.randint(1950, 2005))
    builder.leaf("headquarters", rng.choice(["Seattle", "Boulder", "Portland", "Burlington"]))
    with builder.element("products"):
        for product_number in range(config.products_per_brand):
            _build_product(builder, brand, product_number, focus, config, vocabulary, rng)
    return builder.finish()


def _build_product(
    builder: TreeBuilder,
    brand: str,
    product_number: int,
    focus: Dict[str, str],
    config: OutdoorRetailerConfig,
    vocabulary: OutdoorVocabulary,
    rng: random.Random,
) -> None:
    category = rng.choice(vocabulary.categories)
    if rng.random() < config.focus_strength:
        subcategory = focus[category]
    else:
        subcategory = rng.choice(vocabulary.subcategories[category])
    gender = rng.choice(vocabulary.genders)

    with builder.element("item"):
        builder.leaf("item_name", f"{brand} {subcategory.replace('_', ' ')} {product_number + 1}")
        builder.leaf("category", category)
        builder.leaf("subcategory", subcategory)
        builder.leaf("gender", gender)
        builder.leaf("price", f"{rng.uniform(20, 1200):.2f}")
        builder.leaf("material", rng.choice(vocabulary.materials))
        numeric_attributes = vocabulary.features_numeric.get(category, ())
        for attribute in numeric_attributes:
            builder.leaf(attribute, rng.randint(1, 30) if "gears" in attribute or "capacity" in attribute else rng.randint(150, 2500))
        flags = vocabulary.attributes[category]
        chosen = rng.sample(list(flags), k=min(len(flags), rng.randint(1, 3)))
        with builder.element("features"):
            for flag in chosen:
                builder.leaf(flag, "yes")
