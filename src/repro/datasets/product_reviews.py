"""Synthetic Product Reviews corpus (buzzillions.com substitute).

One document per product.  Each product carries the schema of Figure 1 of the
paper: name, brand, category, price, aggregated rating, and a set of reviews;
each review has a reviewer (name, location, type), a rating, and opinion flags
grouped into pros, cons and best uses.

Two properties of the real data matter to XSACT and are reproduced here:

* every product has its own *opinion profile* — a per-product probability for
  each pro/con/use — so occurrence rates of the same feature type differ across
  products (that is what differentiation feeds on);
* review counts vary widely across products (a paper-cited pain point: "a
  product can have hundreds of reviews"), so occurrence counts alone are not
  comparable and rates must be used.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.vocabulary import ProductVocabulary
from repro.errors import DatasetError
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.node import XMLNode

__all__ = ["ProductReviewsConfig", "generate_product_reviews_corpus"]


@dataclass(frozen=True)
class ProductReviewsConfig:
    """Parameters of the Product Reviews generator.

    Attributes
    ----------
    products_per_category:
        Number of products generated for each category (GPS, phone, camera).
    min_reviews / max_reviews:
        Range of the per-product review count (drawn log-uniformly so a few
        products get very many reviews, as on the real site).
    seed:
        Seed of the generator's private random stream.
    """

    products_per_category: int = 8
    min_reviews: int = 5
    max_reviews: int = 120
    seed: int = 42

    def __post_init__(self) -> None:
        if self.products_per_category < 1:
            raise DatasetError("products_per_category must be >= 1")
        if not (1 <= self.min_reviews <= self.max_reviews):
            raise DatasetError("review count range must satisfy 1 <= min <= max")


def generate_product_reviews_corpus(
    config: Optional[ProductReviewsConfig] = None,
    vocabulary: Optional[ProductVocabulary] = None,
) -> Corpus:
    """Generate the Product Reviews corpus.

    Returns a fully indexed :class:`~repro.storage.corpus.Corpus` whose
    documents are ``product_0001`` ... in generation order.
    """
    config = config or ProductReviewsConfig()
    vocabulary = vocabulary or ProductVocabulary()
    rng = random.Random(config.seed)
    store = DocumentStore()

    product_number = 0
    for category in vocabulary.categories:
        for _ in range(config.products_per_category):
            product_number += 1
            doc_id = f"product_{product_number:04d}"
            root = _build_product(category, product_number, config, vocabulary, rng)
            store.add(doc_id, root, metadata={"dataset": "product_reviews", "category": category})
    return Corpus(store, name="product_reviews")


# ---------------------------------------------------------------------- #
# Document construction
# ---------------------------------------------------------------------- #
def _build_product(
    category: str,
    product_number: int,
    config: ProductReviewsConfig,
    vocabulary: ProductVocabulary,
    rng: random.Random,
) -> XMLNode:
    brand = rng.choice(vocabulary.brands[category])
    line = rng.choice(vocabulary.model_lines[category])
    model_number = rng.choice([230, 330, 630, 730, 920, 1240, 1450])
    suffix = rng.choice(vocabulary.suffixes)
    name = f"{brand} {line} {model_number} {suffix} {category}"

    review_count = _log_uniform_int(rng, config.min_reviews, config.max_reviews)
    profile = _opinion_profile(category, vocabulary, rng)

    builder = TreeBuilder("product")
    builder.leaf("name", name)
    builder.leaf("brand", brand)
    builder.leaf("category", category)
    builder.leaf("price", f"{rng.uniform(49, 899):.2f}")
    builder.leaf("rating", f"{rng.uniform(2.8, 4.9):.1f}")
    with builder.element("reviews"):
        for _ in range(review_count):
            _build_review(builder, category, profile, vocabulary, rng)
    return builder.finish()


def _build_review(
    builder: TreeBuilder,
    category: str,
    profile: Dict[str, Dict[str, float]],
    vocabulary: ProductVocabulary,
    rng: random.Random,
) -> None:
    with builder.element("review"):
        with builder.element("reviewer"):
            builder.leaf("reviewer_name", rng.choice(vocabulary.first_names))
            builder.leaf("location", rng.choice(vocabulary.locations))
            builder.leaf("reviewer_type", rng.choice(vocabulary.reviewer_types))
        builder.leaf("review_rating", rng.randint(1, 5))
        _build_flag_group(builder, "pros", profile["pros"], rng)
        _build_flag_group(builder, "cons", profile["cons"], rng)
        _build_flag_group(builder, "best_uses", profile["best_uses"], rng)


def _build_flag_group(
    builder: TreeBuilder,
    group_tag: str,
    probabilities: Dict[str, float],
    rng: random.Random,
) -> None:
    flags = [name for name, probability in probabilities.items() if rng.random() < probability]
    if not flags:
        return
    with builder.element(group_tag):
        for flag in flags:
            builder.leaf(flag, "yes")


def _opinion_profile(
    category: str,
    vocabulary: ProductVocabulary,
    rng: random.Random,
) -> Dict[str, Dict[str, float]]:
    """Draw a per-product probability for each opinion flag.

    Each product emphasises a few flags strongly (probability 0.5-0.9) and the
    rest weakly (0.02-0.25); which flags are emphasised differs per product,
    which is what produces differentiable occurrence rates across products.
    """
    def draw(options: Sequence[str], strong_count: int) -> Dict[str, float]:
        strong = set(rng.sample(list(options), min(strong_count, len(options))))
        return {
            option: rng.uniform(0.5, 0.9) if option in strong else rng.uniform(0.02, 0.25)
            for option in options
        }

    return {
        "pros": draw(vocabulary.pros[category], strong_count=3),
        "cons": draw(vocabulary.cons[category], strong_count=2),
        "best_uses": draw(vocabulary.best_uses[category], strong_count=2),
    }


def _log_uniform_int(rng: random.Random, low: int, high: int) -> int:
    """Integer drawn log-uniformly in [low, high] (skewed towards low values)."""
    import math

    value = math.exp(rng.uniform(math.log(low), math.log(high)))
    return max(low, min(high, int(round(value))))
