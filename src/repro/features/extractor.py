"""Feature extraction from result subtrees.

The extractor turns a search result's XML subtree into the statistics table of
Figure 1.  The rules follow the paper's reading of the data:

* Every leaf element is a potential feature: its nearest entity ancestor gives
  the *entity*, its own tag gives the *attribute*, and its text gives the
  *value*.
* Features are aggregated per (entity, attribute, value) with an occurrence
  count (``pro: compact`` appearing in 8 of 11 reviews yields count 8) and a
  *population* equal to the number of instances of the owning entity in the
  result (11 reviews), so occurrence counts can be normalised into rates.
* Flag-style leaves whose value is a bare yes/true marker
  (``<compact>yes</compact>`` inside ``<pros>``) are normalised into the
  paper's ``pro: compact`` form: the attribute is the leaf tag (``compact``)
  and the value is the flag, while the *entity scope* of the feature becomes
  ``<owner>.<group>`` (``review.pro``).  Scoping validity per opinion group
  reproduces the behaviour of the paper's examples: the significance ordering
  of Desideratum 2 ranks pros against pros and best-uses against best-uses, so
  a DFS may show the top pros *and* the top best-use without having to exhaust
  every more-frequent pro first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.entity.classifier import NodeCategory, NodeClassifier
from repro.errors import FeatureExtractionError
from repro.features.feature import Feature, FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures
from repro.search.result import SearchResult
from repro.storage.statistics import CorpusStatistics
from repro.xmlmodel.node import XMLNode

__all__ = ["FeatureExtractor", "extract_features"]

_FLAG_VALUES = {"yes", "true", "1", "y"}


@dataclass
class FeatureExtractor:
    """Extracts :class:`~repro.features.statistics.ResultFeatures` from results.

    Parameters
    ----------
    statistics:
        Optional corpus statistics, forwarded to the entity classifier so that
        entity inference can use corpus-wide repetition evidence.
    normalise_flags:
        Whether to apply the yes/no flag normalisation described in the module
        docstring (on by default; the paper's datasets rely on it).
    singularise_entities:
        Whether group tags are reported in singular-ish form by stripping a
        trailing ``s`` when the flag rule fires (``pros`` → ``pro``), matching
        the paper's ``pro: compact`` notation.
    """

    statistics: Optional[CorpusStatistics] = None
    normalise_flags: bool = True
    singularise_entities: bool = True

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def extract(self, result: SearchResult) -> ResultFeatures:
        """Extract the feature statistics of one search result."""
        return self.extract_from_tree(result.subtree, result_id=result.result_id)

    def extract_from_tree(self, root: XMLNode, result_id: str = "") -> ResultFeatures:
        """Extract feature statistics from a bare result tree."""
        if not root.is_element:
            raise FeatureExtractionError("feature extraction requires an element-rooted tree")

        classifier = NodeClassifier(statistics=self.statistics)
        categories = classifier.classify(root)

        # Count entity instances per entity tag: this is the population that
        # occurrence counts are reported against (e.g. the number of reviews).
        entity_instances: Dict[str, int] = {}
        for node in root.iter_elements():
            if categories[node.label] is NodeCategory.ENTITY:
                entity_instances[node.tag] = entity_instances.get(node.tag, 0) + 1

        # Aggregate occurrences per feature, remembering the owning entity tag
        # of each feature so its population can be looked up afterwards.
        occurrence_counts: Dict[Feature, int] = {}
        owner_tags: Dict[Feature, str] = {}
        for leaf in root.iter_leaves():
            extracted = self._leaf_to_feature(leaf, root, classifier, categories)
            if extracted is None:
                continue
            feature, owner_tag = extracted
            occurrence_counts[feature] = occurrence_counts.get(feature, 0) + 1
            owner_tags.setdefault(feature, owner_tag)

        features = ResultFeatures(result_id=result_id)
        for feature, count in occurrence_counts.items():
            population = max(entity_instances.get(owner_tags[feature], 1), count)
            features.add(
                FeatureStatistics(feature=feature, occurrences=count, population=population)
            )
        return features

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _leaf_to_feature(
        self,
        leaf: XMLNode,
        root: XMLNode,
        classifier: NodeClassifier,
        categories,
    ) -> Optional[Tuple[Feature, str]]:
        value = leaf.direct_text()
        owner = classifier.owning_entity(leaf, categories)
        if owner is None:
            owner = root
        owner_tag = owner.tag or ""
        entity = owner_tag

        attribute = leaf.tag or ""
        if self.normalise_flags and value.lower() in _FLAG_VALUES and leaf.parent is not None:
            # <pros><compact>yes</compact></pros> under a review entity becomes
            # the feature (review.pro, compact, yes): "pro: compact" in the
            # paper's notation, scoped to the review's pros group.
            group = leaf.parent
            if group is not owner and group.is_element and group.tag:
                entity = f"{owner_tag}.{self._singular(group.tag)}"
            value = "yes"
        if not value:
            return None
        return Feature(entity=entity, attribute=attribute, value=value), owner_tag

    def _singular(self, tag: str) -> str:
        if not self.singularise_entities:
            return tag
        if tag.endswith("ses") or tag.endswith("xes"):
            return tag[:-2]
        if tag.endswith("ies"):
            return tag[:-3] + "y"
        if tag.endswith("s") and not tag.endswith("ss"):
            return tag[:-1]
        return tag


def extract_features(
    result: SearchResult,
    statistics: Optional[CorpusStatistics] = None,
) -> ResultFeatures:
    """Extract feature statistics from a result with default settings."""
    return FeatureExtractor(statistics=statistics).extract(result)
