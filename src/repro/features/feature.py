"""Feature and feature-type value objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import FeatureTypeParseError

__all__ = ["FeatureType", "Feature"]


@dataclass(frozen=True, order=True)
class FeatureType:
    """A feature type: an (entity, attribute) pair such as ``(review, pro)``.

    Feature types are the unit of comparability in XSACT: "two results are
    comparable by features of the same type" (paper, Section 2).
    """

    entity: str
    attribute: str

    def __str__(self) -> str:
        return f"{self.entity}.{self.attribute}"

    @classmethod
    def parse(cls, text: str) -> "FeatureType":
        """Parse the ``entity.attribute`` string form produced by ``str()``.

        Entity names may themselves contain dots (e.g. the ``review.pro``
        opinion-group scope), so the attribute is the *last* dot-separated
        segment.

        Raises
        ------
        FeatureTypeParseError
            If the text has no dot separator (also catchable as
            :class:`ValueError`).
        """
        entity, _, attribute = text.rpartition(".")
        if not entity or not attribute:
            raise FeatureTypeParseError(f"malformed feature type: {text!r}")
        return cls(entity=entity, attribute=attribute)


@dataclass(frozen=True, order=True)
class Feature:
    """A feature: an (entity, attribute, value) triplet.

    Examples
    --------
    >>> feature = Feature("product", "name", "TomTom Go 630")
    >>> feature.feature_type
    FeatureType(entity='product', attribute='name')
    """

    entity: str
    attribute: str
    value: str

    @property
    def feature_type(self) -> FeatureType:
        """The (entity, attribute) pair of this feature."""
        return FeatureType(entity=self.entity, attribute=self.attribute)

    def __str__(self) -> str:
        return f"{self.entity}.{self.attribute}:{self.value}"

    def as_tuple(self) -> Tuple[str, str, str]:
        """Return the raw (entity, attribute, value) tuple."""
        return (self.entity, self.attribute, self.value)
