"""Per-result feature statistics.

For a search result, the feature statistics are the table on the right-hand
side of Figure 1 in the paper::

    # of reviews: 11
    ATTR : VALUE : # of occ
    pro: easy to read: 10
    pro: compact: 8
    best use: auto: 6
    ...

Every row is a :class:`FeatureStatistics` record: a feature (entity, attribute,
value) plus its occurrence count and the size of the population it was counted
over (e.g. the number of reviews of the product).  A result's complete set of
rows is a :class:`ResultFeatures`, which also provides the significance-ordered
view per entity that the DFS validity constraint is defined on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FeatureExtractionError, UnknownFeatureTypeError
from repro.features.feature import Feature, FeatureType

__all__ = ["FeatureStatistics", "ResultFeatures"]


@dataclass(frozen=True)
class FeatureStatistics:
    """One feature of a result together with its occurrence statistics.

    Attributes
    ----------
    feature:
        The (entity, attribute, value) triplet.
    occurrences:
        How many times the feature occurs in the result (e.g. how many
        reviewers said Yes to ``pro: compact``).
    population:
        The number of opportunities the feature had to occur (e.g. the number
        of reviews).  Always at least ``occurrences``; used to normalise
        occurrence counts into rates so results with different review counts
        stay comparable.
    """

    feature: Feature
    occurrences: int
    population: int

    def __post_init__(self) -> None:
        if self.occurrences < 0:
            raise FeatureExtractionError("occurrences must be non-negative")
        if self.population < max(self.occurrences, 1):
            raise FeatureExtractionError(
                f"population ({self.population}) must be >= occurrences ({self.occurrences}) and >= 1"
            )

    @property
    def feature_type(self) -> FeatureType:
        """The feature's (entity, attribute) type."""
        return self.feature.feature_type

    @property
    def rate(self) -> float:
        """Occurrence rate within the population, in [0, 1]."""
        return self.occurrences / self.population

    def __str__(self) -> str:
        return f"{self.feature.attribute}: {self.feature.value}: {self.occurrences}"


class ResultFeatures:
    """All feature statistics of one search result.

    The container preserves insertion order, offers lookups by feature type and
    exposes the *significance ordering* used by the DFS validity constraint:
    within one entity, feature types ordered by decreasing occurrence count.
    """

    def __init__(self, result_id: str, rows: Optional[Sequence[FeatureStatistics]] = None):
        self.result_id = result_id
        self._rows: List[FeatureStatistics] = []
        self._by_type: Dict[FeatureType, FeatureStatistics] = {}
        for row in rows or []:
            self.add(row)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, row: FeatureStatistics) -> None:
        """Add a row; a second row of an existing feature type replaces the
        first only if it has more occurrences (the statistics keep the dominant
        value per type, as in the paper's examples)."""
        existing = self._by_type.get(row.feature_type)
        if existing is None:
            self._rows.append(row)
            self._by_type[row.feature_type] = row
            return
        if row.occurrences > existing.occurrences:
            index = self._rows.index(existing)
            self._rows[index] = row
            self._by_type[row.feature_type] = row

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[FeatureStatistics]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, feature_type: FeatureType) -> bool:
        return feature_type in self._by_type

    def get(self, feature_type: FeatureType) -> Optional[FeatureStatistics]:
        """Return the row of a feature type, or ``None``."""
        return self._by_type.get(feature_type)

    def feature_types(self) -> List[FeatureType]:
        """Return every feature type present, in insertion order."""
        return [row.feature_type for row in self._rows]

    def entities(self) -> List[str]:
        """Return the distinct entity names, in insertion order."""
        seen: Dict[str, None] = {}
        for row in self._rows:
            seen.setdefault(row.feature.entity, None)
        return list(seen)

    def rows_for_entity(self, entity: str) -> List[FeatureStatistics]:
        """Return the rows of one entity in insertion order."""
        return [row for row in self._rows if row.feature.entity == entity]

    # ------------------------------------------------------------------ #
    # Significance ordering (Desideratum 2)
    # ------------------------------------------------------------------ #
    def significance_order(self, entity: str) -> List[FeatureStatistics]:
        """Rows of one entity ordered by decreasing occurrences.

        Ties are broken by attribute then value so the order is deterministic;
        the validity constraint treats tied rows as interchangeable.
        """
        rows = self.rows_for_entity(entity)
        return sorted(
            rows,
            key=lambda row: (-row.occurrences, row.feature.attribute, row.feature.value),
        )

    def significance_rank(self, feature_type: FeatureType) -> int:
        """0-based rank of a feature type within its entity's significance order.

        Raises
        ------
        UnknownFeatureTypeError
            If the feature type is not present (also catchable as
            :class:`KeyError`).
        """
        row = self._by_type.get(feature_type)
        if row is None:
            raise UnknownFeatureTypeError(str(feature_type))
        ordered = self.significance_order(feature_type.entity)
        return ordered.index(row)

    def top_rows(self, limit: int) -> List[FeatureStatistics]:
        """The ``limit`` most significant rows across all entities.

        Entities are interleaved by significance (global sort on occurrence
        count), matching how a frequency-based snippet would pick features.
        """
        ordered = sorted(
            self._rows,
            key=lambda row: (-row.occurrences, row.feature.entity, row.feature.attribute, row.feature.value),
        )
        return ordered[:limit]

    def total_occurrences(self) -> int:
        """Sum of occurrence counts over all rows."""
        return sum(row.occurrences for row in self._rows)

    def __repr__(self) -> str:
        return f"ResultFeatures(result_id={self.result_id!r}, rows={len(self._rows)})"
