"""Feature model and extraction (the "Feature Extractor" of Figure 3).

A **feature** is a triplet ``(entity, attribute, value)`` such as
``(Product, Name, "TomTom Go 630")`` and a **feature type** is the
``(entity, attribute)`` pair (paper, Section 2).  For each search result the
extractor produces the statistics table shown on the right of Figure 1: every
feature together with its number of occurrences in the result (e.g.
``pro: compact: 8`` meaning 8 of the 11 reviews list "compact" as a pro) and
the total number of occurrences of its feature type within the owning entity,
which is what the validity desideratum's significance ordering is computed
from.
"""

from repro.features.feature import Feature, FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures
from repro.features.extractor import FeatureExtractor, extract_features

__all__ = [
    "Feature",
    "FeatureType",
    "FeatureStatistics",
    "ResultFeatures",
    "FeatureExtractor",
    "extract_features",
]
