"""Exception hierarchy for the XSACT reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries while still being able to
discriminate the failing subsystem (parsing, storage, search, feature
extraction, DFS construction) when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "XMLParseError",
    "DeweyError",
    "StructureError",
    "StorageError",
    "DocumentNotFoundError",
    "DuplicateDocumentError",
    "IndexError_",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "QueryError",
    "SearchError",
    "ResultNotFoundError",
    "ServiceError",
    "ProtocolError",
    "InvalidCursorError",
    "ReadOnlyServiceError",
    "EntityInferenceError",
    "FeatureExtractionError",
    "FeatureTypeParseError",
    "UnknownFeatureTypeError",
    "DFSConstructionError",
    "InvalidDFSError",
    "ComparisonError",
    "ComparisonLookupError",
    "DatasetError",
    "WorkloadError",
    "ExperimentError",
    "UnknownQueryError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class XMLParseError(ReproError):
    """Raised when an XML document cannot be parsed.

    Attributes
    ----------
    position:
        Character offset in the input at which parsing failed, when known.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class DeweyError(ReproError):
    """Raised for malformed Dewey labels or invalid Dewey operations."""


class StructureError(ReproError):
    """Raised by the structural index (:mod:`repro.structure`).

    Covers inconsistent label/tag tables handed to
    :class:`~repro.structure.encoding.DocumentStructure`, out-of-range tag
    ids, and structural lookups for nodes the index does not know.  Snapshot
    files whose *persisted* structural section is damaged raise
    :class:`SnapshotFormatError` instead — corruption is a storage concern,
    misuse of a live index is a structure concern.
    """


class StorageError(ReproError):
    """Base class for document-store and index errors."""


class DocumentNotFoundError(StorageError):
    """Raised when a document id is not present in a :class:`DocumentStore`."""

    def __init__(self, doc_id: str):
        super().__init__(f"document not found: {doc_id!r}")
        self.doc_id = doc_id


class DuplicateDocumentError(StorageError):
    """Raised when adding a document whose id is already present.

    Every writable backend (eager store, lazy store, sharded membership)
    raises this subclass so the service layer can map duplicates to a single
    HTTP 409 regardless of which corpus flavour backs the service.  Remains a
    :class:`StorageError` for callers that catch the broad class.
    """

    def __init__(self, doc_id: str):
        super().__init__(f"duplicate document id: {doc_id!r}")
        self.doc_id = doc_id


class IndexError_(StorageError):
    """Raised when an inverted-index operation fails.

    The trailing underscore avoids shadowing the built-in :class:`IndexError`.
    """


class SnapshotError(StorageError):
    """Base class for binary corpus-snapshot errors."""


class SnapshotFormatError(SnapshotError):
    """Raised when a snapshot file cannot be decoded.

    Covers every way a file can fail structural validation: missing or
    malformed header, unsupported format version, truncation, checksum
    mismatch, and trailing or overrun payload bytes.  A load that raises this
    error has not constructed any corpus state.
    """


class SnapshotVersionError(SnapshotError):
    """Raised when a snapshot's corpus version does not match the caller's.

    Loading with ``expected_version`` set asserts that the snapshot captures a
    specific :attr:`~repro.storage.corpus.Corpus.version`; a mismatch means
    the corpus was mutated after the snapshot was taken (or the snapshot
    belongs to a different corpus lineage), so the stale file is rejected
    instead of silently resurrecting old data.
    """


class QueryError(ReproError):
    """Raised for malformed keyword queries (e.g. empty keyword lists)."""


class SearchError(ReproError):
    """Raised when search-engine evaluation fails."""


class ResultNotFoundError(SearchError, KeyError):
    """Raised when a result id is not present in a result or DFS set.

    Inherits :class:`KeyError` because the lookup is mapping-like and
    long-standing callers select results inside ``except KeyError`` blocks;
    ``__str__`` is pinned to the plain-message form so the error does not
    render with :class:`KeyError`'s quoted-repr formatting.
    """

    __str__ = Exception.__str__

    def __init__(self, result_id: str):
        super().__init__(f"no result with id {result_id!r}")
        self.result_id = result_id


class ServiceError(ReproError):
    """Base class for service-layer errors (requests, cursors, protocol)."""


class ProtocolError(ServiceError):
    """Raised when a request/response dictionary fails protocol validation.

    Covers missing required fields, wrong field types and malformed values in
    the JSON wire format of :mod:`repro.service.protocol`.  A decoder that
    raises this error has not constructed any request/response object.
    """


class InvalidCursorError(ServiceError):
    """Raised when a pagination cursor cannot be honoured.

    A cursor is opaque to callers but self-describing inside the service: it
    records the normalised query identity, the semantics, the page offset and
    the :attr:`~repro.storage.corpus.Corpus.version` it was issued against.
    This error covers both undecodable cursors (truncated, tampered, not ours)
    and *stale* cursors whose corpus version no longer matches — result
    positions are only stable within one corpus version, so paging across a
    mutation must restart rather than silently skip or repeat results.
    """


class ReadOnlyServiceError(ServiceError):
    """Raised when a mutation is attempted on a service booted read-only.

    The HTTP front-end maps this to 403: the request was well-formed, but
    this deployment does not accept writes (``serve`` without ``--writable``).
    """


class EntityInferenceError(ReproError):
    """Raised when node-category inference cannot classify a result tree."""


class FeatureExtractionError(ReproError):
    """Raised when feature extraction fails on a result tree."""


class FeatureTypeParseError(FeatureExtractionError, ValueError):
    """Raised when an ``entity.attribute`` feature-type string is malformed.

    Inherits :class:`ValueError` for callers that validate user input with
    the conventional ``except ValueError``.
    """


class UnknownFeatureTypeError(FeatureExtractionError, KeyError):
    """Raised when a feature type is absent from a statistics table.

    Inherits :class:`KeyError` because the lookup is mapping-like;
    ``__str__`` is pinned so messages render unquoted.
    """

    __str__ = Exception.__str__

    def __init__(self, feature_type: str):
        super().__init__(f"unknown feature type: {feature_type}")
        self.feature_type = feature_type


class DFSConstructionError(ReproError):
    """Raised when DFS construction receives inconsistent inputs."""


class InvalidDFSError(DFSConstructionError):
    """Raised when a DFS violates validity or the size bound."""


class ComparisonError(ReproError):
    """Raised when a comparison table cannot be assembled or rendered."""


class ComparisonLookupError(ComparisonError, KeyError):
    """Raised when a comparison-table row or column lookup misses.

    Inherits :class:`KeyError` because the lookup is mapping-like;
    ``__str__`` is pinned so messages render unquoted.
    """

    __str__ = Exception.__str__


class DatasetError(ReproError):
    """Raised by the synthetic dataset generators for invalid parameters."""


class WorkloadError(ReproError):
    """Raised when a workload definition is inconsistent."""


class ExperimentError(ReproError):
    """Raised when an experiment runner is misconfigured."""


class UnknownQueryError(ExperimentError, KeyError):
    """Raised when a workload has no query with the requested name.

    Inherits :class:`KeyError` because the lookup is mapping-like;
    ``__str__`` is pinned so messages render unquoted.
    """

    __str__ = Exception.__str__

    def __init__(self, query_name: str):
        super().__init__(f"no query named {query_name!r} in the workload")
        self.query_name = query_name


class AnalysisError(ReproError):
    """Raised when the static-analysis engine is misused or misconfigured.

    Covers unknown rule ids, unreadable targets, syntactically invalid
    sources and malformed baseline files — never a rule *finding*, which is
    data (:class:`repro.analysis.findings.Finding`), not an exception.
    """
