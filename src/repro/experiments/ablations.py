"""Ablation experiments (A1-A5 in DESIGN.md).

These sweeps go beyond the single figure of the demo paper and probe the design
choices the companion full paper discusses: how the DoD and running time react
to the size limit ``L``, to the number of compared results ``n``, and to the
differentiability threshold ``x``; how far the heuristics are from the true
optimum on instances small enough to solve exhaustively; and how the whole
field of algorithms (random / top-significance / greedy / single-swap /
multi-swap) compares at equal budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import DFSConfig
from repro.errors import UnknownQueryError
from repro.core.dod import total_dod
from repro.core.generator import DFSGenerator
from repro.features.statistics import ResultFeatures
from repro.storage.corpus import Corpus
from repro.workloads.queries import QuerySpec, Workload, imdb_workload
from repro.workloads.runner import WorkloadRunner

__all__ = [
    "AblationRow",
    "run_size_limit_ablation",
    "run_num_results_ablation",
    "run_threshold_ablation",
    "run_optimality_gap",
    "run_algorithm_field",
]


@dataclass(frozen=True)
class AblationRow:
    """One measurement point of an ablation sweep."""

    sweep: str
    parameter: str
    value: object
    algorithm: str
    dod: int
    seconds: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary form for reports and benchmark output."""
        return {
            "sweep": self.sweep,
            self.parameter: self.value,
            "algorithm": self.algorithm,
            "dod": self.dod,
            "time_s": round(self.seconds, 6),
        }


def _default_runner(config: Optional[DFSConfig] = None) -> WorkloadRunner:
    return WorkloadRunner(imdb_workload(), config=config)


def _features_for(runner: WorkloadRunner, query_name: str) -> List[ResultFeatures]:
    for spec in runner.workload.queries:
        if spec.name == query_name:
            return runner.result_features(spec)
    raise UnknownQueryError(query_name)


def run_size_limit_ablation(
    size_limits: Sequence[int] = (2, 4, 6, 8, 10),
    query_name: str = "QM1",
    algorithms: Sequence[str] = ("single_swap", "multi_swap"),
    runner: Optional[WorkloadRunner] = None,
) -> List[AblationRow]:
    """A1: DoD and time as a function of the DFS size limit L."""
    runner = runner or _default_runner()
    features = _features_for(runner, query_name)
    rows: List[AblationRow] = []
    for size_limit in size_limits:
        config = DFSConfig(size_limit=size_limit)
        generator = DFSGenerator(config)
        for algorithm in algorithms:
            outcome = generator.generate(features, algorithm=algorithm)
            rows.append(
                AblationRow(
                    sweep="size_limit",
                    parameter="L",
                    value=size_limit,
                    algorithm=algorithm,
                    dod=outcome.dod,
                    seconds=outcome.elapsed_seconds,
                )
            )
    return rows


def run_num_results_ablation(
    result_counts: Sequence[int] = (2, 5, 10, 20),
    query_name: str = "QM3",
    algorithms: Sequence[str] = ("single_swap", "multi_swap"),
    runner: Optional[WorkloadRunner] = None,
) -> List[AblationRow]:
    """A2: DoD and time as a function of the number of compared results n."""
    runner = runner or _default_runner()
    features = _features_for(runner, query_name)
    generator = DFSGenerator(runner.config)
    rows: List[AblationRow] = []
    for count in result_counts:
        subset = features[: min(count, len(features))]
        if len(subset) < 2:
            continue
        for algorithm in algorithms:
            outcome = generator.generate(subset, algorithm=algorithm)
            rows.append(
                AblationRow(
                    sweep="num_results",
                    parameter="n",
                    value=len(subset),
                    algorithm=algorithm,
                    dod=outcome.dod,
                    seconds=outcome.elapsed_seconds,
                )
            )
    return rows


def run_threshold_ablation(
    thresholds: Sequence[float] = (5.0, 10.0, 20.0, 50.0),
    query_name: str = "QM1",
    algorithms: Sequence[str] = ("single_swap", "multi_swap"),
    runner: Optional[WorkloadRunner] = None,
) -> List[AblationRow]:
    """A3: sensitivity of the DoD to the differentiability threshold x."""
    runner = runner or _default_runner()
    features = _features_for(runner, query_name)
    rows: List[AblationRow] = []
    for threshold in thresholds:
        config = DFSConfig(threshold_percent=threshold)
        generator = DFSGenerator(config)
        for algorithm in algorithms:
            outcome = generator.generate(features, algorithm=algorithm)
            rows.append(
                AblationRow(
                    sweep="threshold",
                    parameter="x_percent",
                    value=threshold,
                    algorithm=algorithm,
                    dod=outcome.dod,
                    seconds=outcome.elapsed_seconds,
                )
            )
    return rows


def run_optimality_gap(
    num_results: int = 3,
    size_limit: int = 3,
    seeds: Sequence[int] = (0, 1, 2),
    runner: Optional[WorkloadRunner] = None,  # accepted for interface symmetry
) -> List[AblationRow]:
    """A4: heuristics vs the exhaustive optimum on small synthetic instances.

    Real query results carry too many tied feature types for exhaustive search,
    so this experiment uses the deterministic micro-instances of
    :mod:`repro.experiments.instances` (few results, few feature types, small
    L).  The interesting output is the DoD of each heuristic next to the true
    optimum, aggregated over several seeds.
    """
    from repro.experiments.instances import micro_instance
    from repro.core.generator import ALGORITHMS

    rows: List[AblationRow] = []
    algorithms = ("top_significance", "greedy", "single_swap", "multi_swap", "exhaustive")
    for seed in seeds:
        problem = micro_instance(num_results=num_results, size_limit=size_limit, seed=seed)
        generator = DFSGenerator(problem.config)
        for algorithm in algorithms:
            outcome = generator.generate(problem.results, algorithm=algorithm)
            rows.append(
                AblationRow(
                    sweep="optimality_gap",
                    parameter="instance_seed",
                    value=seed,
                    algorithm=algorithm,
                    dod=outcome.dod,
                    seconds=outcome.elapsed_seconds,
                )
            )
    return rows


def run_algorithm_field(
    query_name: str = "QM2",
    algorithms: Sequence[str] = (
        "random",
        "top_significance",
        "greedy",
        "single_swap",
        "multi_swap",
    ),
    runner: Optional[WorkloadRunner] = None,
) -> List[AblationRow]:
    """A5: the whole algorithm field on one query at the default budget."""
    runner = runner or _default_runner()
    features = _features_for(runner, query_name)
    generator = DFSGenerator(runner.config)
    rows: List[AblationRow] = []
    for algorithm in algorithms:
        outcome = generator.generate(features, algorithm=algorithm)
        rows.append(
            AblationRow(
                sweep="algorithm_field",
                parameter="algorithm",
                value=algorithm,
                algorithm=algorithm,
                dod=outcome.dod,
                seconds=outcome.elapsed_seconds,
            )
        )
    return rows
