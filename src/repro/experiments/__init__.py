"""Experiment harnesses: figure regeneration, ablations and report formatting.

Each experiment in DESIGN.md's index has a function here that produces the
corresponding table/series as plain data structures, plus a formatter that
prints them the way the paper reports them.  The ``benchmarks/`` tree wraps
these functions in pytest-benchmark targets; the ``examples/`` scripts call
them directly.
"""

from repro.experiments.figure4 import Figure4Row, run_figure4
from repro.experiments.ablations import (
    AblationRow,
    run_algorithm_field,
    run_num_results_ablation,
    run_optimality_gap,
    run_size_limit_ablation,
    run_threshold_ablation,
)
from repro.experiments.export import read_json, rows_to_dicts, write_csv, write_json
from repro.experiments.instances import micro_instance, micro_result
from repro.experiments.report import format_measurements, format_rows, series_by_algorithm

__all__ = [
    "rows_to_dicts",
    "write_csv",
    "write_json",
    "read_json",
    "micro_instance",
    "micro_result",
    "Figure4Row",
    "run_figure4",
    "AblationRow",
    "run_size_limit_ablation",
    "run_num_results_ablation",
    "run_threshold_ablation",
    "run_optimality_gap",
    "run_algorithm_field",
    "format_measurements",
    "format_rows",
    "series_by_algorithm",
]
