"""Export of experiment results to CSV and JSON.

Experiment rows (Figure 4 rows, ablation rows, workload measurements) all
expose ``as_dict()``; these helpers persist them so results can be versioned,
diffed across runs, or plotted with external tooling.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union

from repro.errors import ExperimentError

__all__ = ["rows_to_dicts", "write_csv", "write_json", "read_json"]

_PathLike = Union[str, Path]


def rows_to_dicts(rows: Sequence[object]) -> List[Mapping[str, object]]:
    """Normalise experiment rows (objects with ``as_dict()`` or mappings) to dicts."""
    dictionaries: List[Mapping[str, object]] = []
    for row in rows:
        if hasattr(row, "as_dict"):
            dictionaries.append(row.as_dict())
        elif isinstance(row, Mapping):
            dictionaries.append(dict(row))
        else:
            raise ExperimentError(f"cannot export row of type {type(row).__name__}")
    return dictionaries


def write_csv(rows: Sequence[object], path: _PathLike) -> Path:
    """Write experiment rows as CSV; returns the written path.

    The union of keys across all rows forms the header (missing values are
    left blank), so heterogeneous ablation sweeps can share one file.
    """
    dictionaries = rows_to_dicts(rows)
    if not dictionaries:
        raise ExperimentError("cannot export an empty result set")
    fieldnames: List[str] = []
    for dictionary in dictionaries:
        for key in dictionary:
            if key not in fieldnames:
                fieldnames.append(key)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(dictionaries)
    return target


def write_json(rows: Sequence[object], path: _PathLike, indent: int = 2) -> Path:
    """Write experiment rows as a JSON array; returns the written path."""
    dictionaries = rows_to_dicts(rows)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(dictionaries, handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return target


def read_json(path: _PathLike) -> List[Mapping[str, object]]:
    """Read back a JSON export written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ExperimentError(f"{path} does not contain a JSON array of rows")
    return data
