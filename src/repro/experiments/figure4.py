"""Regeneration of Figure 4: effectiveness and efficiency of XSACT.

Figure 4 of the paper plots, for the eight IMDB queries QM1-QM8:

* (a) the DoD achieved by the single-swap and multi-swap methods, and
* (b) their processing times.

:func:`run_figure4` reproduces both panels in one pass: for every query it runs
both algorithms over all of the query's results and records DoD and
construction time.  Expected shape (see DESIGN.md / EXPERIMENTS.md): multi-swap
DoD >= single-swap DoD on every query, both algorithms well under a second per
query, single-swap usually but not always faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import DFSConfig
from repro.storage.corpus import Corpus
from repro.workloads.queries import Workload, imdb_workload
from repro.workloads.runner import QueryMeasurement, WorkloadRunner

__all__ = ["Figure4Row", "run_figure4"]


@dataclass(frozen=True)
class Figure4Row:
    """One query's row of Figure 4 (both panels)."""

    query_name: str
    num_results: int
    single_swap_dod: int
    multi_swap_dod: int
    single_swap_seconds: float
    multi_swap_seconds: float

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary form for reports and benchmark output."""
        return {
            "query": self.query_name,
            "results": self.num_results,
            "dod_single_swap": self.single_swap_dod,
            "dod_multi_swap": self.multi_swap_dod,
            "time_single_swap_s": round(self.single_swap_seconds, 6),
            "time_multi_swap_s": round(self.multi_swap_seconds, 6),
        }


def run_figure4(
    config: Optional[DFSConfig] = None,
    workload: Optional[Workload] = None,
    corpus: Optional[Corpus] = None,
    runner: Optional[WorkloadRunner] = None,
) -> List[Figure4Row]:
    """Run the Figure 4 experiment and return one row per query.

    Parameters
    ----------
    config:
        DFS configuration (defaults to L=5, x=10%).
    workload:
        Query workload; defaults to QM1-QM8 over the synthetic IMDB corpus.
    corpus:
        Pre-built corpus to reuse (avoids regenerating it in benchmarks).
    runner:
        Pre-built runner to reuse (implies ``workload``/``corpus``/``config``).
    """
    if runner is None:
        workload = workload or imdb_workload()
        runner = WorkloadRunner(workload, config=config, corpus=corpus)
    rows: List[Figure4Row] = []
    for spec in runner.workload.queries:
        single = runner.run_query(spec, "single_swap")
        multi = runner.run_query(spec, "multi_swap")
        rows.append(
            Figure4Row(
                query_name=spec.name,
                num_results=single.num_results,
                single_swap_dod=single.dod,
                multi_swap_dod=multi.dod,
                single_swap_seconds=single.construction_seconds,
                multi_swap_seconds=multi.construction_seconds,
            )
        )
    return rows
