"""Synthetic micro-instances of the DFS construction problem.

The optimality-gap experiment (A4) and several tests need DFS problem
instances that are (a) small enough for the exhaustive solver and (b) generated
directly at the feature-statistics level, without running the whole
search/extraction pipeline.  :func:`micro_instance` builds such instances
deterministically from a seed: a handful of results sharing a pool of feature
types, with skewed occurrence counts so the validity constraint has bite.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.config import DFSConfig
from repro.core.problem import DFSProblem
from repro.features.feature import Feature
from repro.features.statistics import FeatureStatistics, ResultFeatures

__all__ = ["micro_instance", "micro_result"]


def micro_result(
    result_id: str,
    rng: random.Random,
    entities: Sequence[str] = ("product", "review.pro", "review.con"),
    attributes_per_entity: int = 4,
    population: int = 20,
    value_pool: Sequence[str] = ("yes", "red", "blue", "large", "small"),
) -> ResultFeatures:
    """Build one synthetic result's feature statistics.

    Every entity scope gets ``attributes_per_entity`` feature types with
    occurrence counts drawn between 1 and ``population``; values are drawn from
    a small pool so that some pairs of results agree on a value (not
    differentiable) and others do not.
    """
    result = ResultFeatures(result_id=result_id)
    for entity in entities:
        for attribute_index in range(attributes_per_entity):
            attribute = f"attr{attribute_index}"
            value = rng.choice(list(value_pool))
            occurrences = rng.randint(1, population)
            result.add(
                FeatureStatistics(
                    feature=Feature(entity=entity, attribute=attribute, value=value),
                    occurrences=occurrences,
                    population=population,
                )
            )
    return result


def micro_instance(
    num_results: int = 3,
    size_limit: int = 3,
    seed: int = 0,
    entities: Sequence[str] = ("product", "review.pro", "review.con"),
    attributes_per_entity: int = 4,
    config: Optional[DFSConfig] = None,
) -> DFSProblem:
    """Build a small, exhaustively solvable DFS problem instance."""
    rng = random.Random(seed)
    results: List[ResultFeatures] = [
        micro_result(
            f"R{index + 1}",
            rng,
            entities=entities,
            attributes_per_entity=attributes_per_entity,
        )
        for index in range(num_results)
    ]
    config = config or DFSConfig(size_limit=size_limit)
    return DFSProblem(results=results, config=config)
