"""Plain-text report formatting for experiment output.

The harness prints the same rows/series the paper reports, aligned as text
tables so they read well in a terminal, in ``bench_output.txt`` and in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_rows", "format_measurements", "series_by_algorithm"]


def format_rows(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Format a list of flat dictionaries as an aligned text table.

    All dictionaries should share the same keys; the key order of the first row
    defines the column order.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    table: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        table.append([_format_value(row.get(column, "")) for column in columns])

    widths = [max(len(line[index]) for line in table) for index in range(len(columns))]

    def render(line: List[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(line))

    lines = []
    if title:
        lines.append(title)
    lines.append(render(table[0]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(line) for line in table[1:])
    return "\n".join(lines)


def format_measurements(measurements: Sequence[object], title: str = "") -> str:
    """Format objects exposing ``as_dict()`` (measurements, rows) as a table."""
    return format_rows([measurement.as_dict() for measurement in measurements], title=title)


def series_by_algorithm(
    measurements: Sequence[object],
    value_key: str = "dod",
    label_key: str = "query",
    algorithm_key: str = "algorithm",
) -> Dict[str, List[object]]:
    """Pivot measurements into per-algorithm series (the figure's data layout).

    Returns ``{algorithm: [value per label in first-appearance order]}`` — the
    shape a plotting script or a quick textual comparison needs.
    """
    dictionaries = [measurement.as_dict() for measurement in measurements]
    labels: List[object] = []
    for row in dictionaries:
        label = row.get(label_key)
        if label not in labels:
            labels.append(label)
    series: Dict[str, List[object]] = {}
    for row in dictionaries:
        algorithm = str(row.get(algorithm_key))
        series.setdefault(algorithm, [None] * len(labels))
        series[algorithm][labels.index(row.get(label_key))] = row.get(value_key)
    return series


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6f}".rstrip("0").rstrip(".") if value else "0"
    return str(value)
