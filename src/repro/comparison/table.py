"""The comparison-table model (Figure 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import differentiable, total_dod
from repro.errors import ComparisonError, ComparisonLookupError
from repro.features.feature import FeatureType
from repro.features.statistics import FeatureStatistics

__all__ = ["ComparisonCell", "ComparisonRow", "ComparisonTable"]


@dataclass(frozen=True)
class ComparisonCell:
    """One cell of the comparison table.

    A cell is either empty (the result's DFS does not contain the row's feature
    type — analogous to the "null/unknown" discussion in the paper) or shows
    the value together with its occurrence statistics.
    """

    value: Optional[str] = None
    occurrences: int = 0
    population: int = 0

    @property
    def is_empty(self) -> bool:
        """Whether the result's DFS has no feature of this row's type."""
        return self.value is None

    @property
    def rate(self) -> float:
        """Occurrence rate, 0.0 for empty cells."""
        if self.is_empty or self.population == 0:
            return 0.0
        return self.occurrences / self.population

    def display(self) -> str:
        """Human-readable cell content, e.g. ``"compact (8/11, 73%)"``."""
        if self.is_empty:
            return "—"
        if self.population <= 1:
            return str(self.value)
        return f"{self.value} ({self.occurrences}/{self.population}, {self.rate:.0%})"


@dataclass
class ComparisonRow:
    """One row of the comparison table: a feature type across all results."""

    feature_type: FeatureType
    cells: List[ComparisonCell]
    differentiating: bool = False

    def label(self) -> str:
        """Row label, e.g. ``"review.pro"``."""
        return str(self.feature_type)


class ComparisonTable:
    """The comparison table generated from a DFS set.

    Rows are the union of feature types across the DFSs, grouped by entity and
    ordered by how strongly they differentiate (differentiating rows first,
    then by total occurrences) — the order a user scanning the table benefits
    from most.  Columns are the results, in the order they were selected.
    """

    def __init__(
        self,
        column_ids: Sequence[str],
        column_titles: Sequence[str],
        rows: Sequence[ComparisonRow],
        dod: int,
        config: DFSConfig,
    ):
        if len(column_ids) != len(column_titles):
            raise ComparisonError("column ids and titles must align")
        self.column_ids = list(column_ids)
        self.column_titles = list(column_titles)
        self.rows = list(rows)
        self.dod = dod
        self.config = config

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dfs_set(
        cls,
        dfs_set: DFSSet,
        config: Optional[DFSConfig] = None,
        column_titles: Optional[Sequence[str]] = None,
    ) -> "ComparisonTable":
        """Build the table for a DFS set.

        Parameters
        ----------
        dfs_set:
            The DFSs of the selected results.
        config:
            Needed for the differentiability marking; defaults to the standard
            configuration.
        column_titles:
            Optional display titles (product names); defaults to result ids.
        """
        config = config or DFSConfig()
        column_ids = dfs_set.result_ids()
        titles = list(column_titles) if column_titles is not None else list(column_ids)
        if len(titles) != len(column_ids):
            raise ComparisonError(
                f"expected {len(column_ids)} column titles, got {len(titles)}"
            )

        rows: List[ComparisonRow] = []
        for feature_type in dfs_set.all_feature_types():
            cells: List[ComparisonCell] = []
            present_rows: List[FeatureStatistics] = []
            for dfs in dfs_set:
                row = dfs.get(feature_type)
                if row is None:
                    cells.append(ComparisonCell())
                else:
                    present_rows.append(row)
                    cells.append(
                        ComparisonCell(
                            value=row.feature.value,
                            occurrences=row.occurrences,
                            population=row.population,
                        )
                    )
            rows.append(
                ComparisonRow(
                    feature_type=feature_type,
                    cells=cells,
                    differentiating=_row_differentiates(present_rows, config),
                )
            )

        rows.sort(
            key=lambda row: (
                row.feature_type.entity,
                not row.differentiating,
                -sum(cell.occurrences for cell in row.cells),
                row.feature_type.attribute,
            )
        )
        return cls(
            column_ids=column_ids,
            column_titles=titles,
            rows=rows,
            dod=total_dod(dfs_set, config),
            config=config,
        )

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ComparisonRow]:
        return iter(self.rows)

    def row_for(self, feature_type: FeatureType) -> ComparisonRow:
        """Return the row of a feature type.

        Raises
        ------
        ComparisonLookupError
            If the table has no such row (also catchable as
            :class:`KeyError`).
        """
        for row in self.rows:
            if row.feature_type == feature_type:
                return row
        raise ComparisonLookupError(f"no comparison row for feature type {feature_type}")

    def differentiating_rows(self) -> List[ComparisonRow]:
        """Rows on which at least one pair of results is differentiable."""
        return [row for row in self.rows if row.differentiating]

    def column_index(self, result_id: str) -> int:
        """Index of a result's column.

        Raises
        ------
        ComparisonLookupError
            If the result id is not a column (also catchable as
            :class:`KeyError`).
        """
        try:
            return self.column_ids.index(result_id)
        except ValueError:
            raise ComparisonLookupError(f"no comparison column for result id {result_id!r}") from None


def _row_differentiates(present_rows: List[FeatureStatistics], config: DFSConfig) -> bool:
    for index_a in range(len(present_rows)):
        for index_b in range(index_a + 1, len(present_rows)):
            if differentiable(present_rows[index_a], present_rows[index_b], config):
                return True
    return False
