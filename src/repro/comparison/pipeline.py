"""The end-to-end XSACT pipeline (Figure 3 of the paper).

The :class:`Xsact` class ties the whole system together the way the demo's web
interface does:

1. the user issues a keyword query → the search engine returns ranked results;
2. the user selects the results to compare (by result id, mirroring the demo's
   checkboxes) and optionally a comparison-table size limit;
3. the result processor identifies entities and extracts features;
4. the DFS generator builds a Differentiation Feature Set per result with the
   chosen algorithm (single-swap or multi-swap);
5. the comparison table is assembled and can be rendered as text / Markdown /
   HTML.

Since the service-layer redesign, :class:`Xsact` is a thin convenience shell
over :class:`~repro.service.service.SearchService` — the single public entry
point that also backs the HTTP front-end and the CLI.  Construct an ``Xsact``
for ergonomic in-process use; construct a ``SearchService`` directly when you
need per-request semantics, pagination, batching or the typed protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.comparison.render import render_html, render_markdown, render_text
from repro.comparison.table import ComparisonTable
from repro.core.config import DFSConfig
from repro.core.generator import GenerationOutcome
from repro.features.statistics import ResultFeatures
from repro.search.query import KeywordQuery
from repro.search.result import SearchResult, SearchResultSet
from repro.storage.corpus import Corpus

__all__ = ["ComparisonOutcome", "Xsact"]


@dataclass
class ComparisonOutcome:
    """Everything produced by one comparison request.

    Attributes
    ----------
    query:
        The keyword query the results came from.
    results:
        The selected results, in the order the user picked them.
    features:
        The extracted feature statistics, aligned with ``results``.
    generation:
        The DFS generation outcome (DFS set, DoD, timing).
    table:
        The comparison table built from the DFS set.
    """

    query: KeywordQuery
    results: List[SearchResult]
    features: List[ResultFeatures]
    generation: GenerationOutcome
    table: ComparisonTable

    @property
    def dod(self) -> int:
        """Total degree of differentiation of the generated DFSs."""
        return self.generation.dod

    def to_text(self) -> str:
        """Plain-text rendering of the comparison table."""
        return render_text(self.table)

    def to_markdown(self) -> str:
        """Markdown rendering of the comparison table."""
        return render_markdown(self.table)

    def to_html(self) -> str:
        """HTML rendering of the comparison table."""
        return render_html(self.table, title=f"XSACT comparison for query: {self.query}")


class Xsact:
    """The XSACT system facade.

    Parameters
    ----------
    corpus:
        The XML corpus to search (one of the dataset generators' outputs or a
        corpus loaded from disk).
    config:
        DFS construction configuration (size limit, threshold).
    algorithm:
        Default DFS construction algorithm (``"multi_swap"`` as in the demo's
        preferred setting; ``"single_swap"`` is the faster alternative).
    """

    def __init__(
        self,
        corpus: Corpus,
        config: Optional[DFSConfig] = None,
        algorithm: str = "multi_swap",
    ):
        # Local import: the service layer sits *above* the comparison
        # pipeline (it returns ComparisonOutcome objects), so importing it at
        # module scope would be circular.
        from repro.service.service import SearchService  # repro: ignore[layering]

        self.service = SearchService(corpus, config=config, algorithm=algorithm)
        self.corpus = corpus
        self.config = self.service.config
        self.algorithm = algorithm
        # Kept as a real attribute for callers that tune or inspect the
        # default-semantics engine directly (cache bounds, counters).
        self.engine = self.service.engine_for("slca")
        self.extractor = self.service.extractor

    # ------------------------------------------------------------------ #
    # Step 1: search
    # ------------------------------------------------------------------ #
    def search(self, query: "str | KeywordQuery", limit: Optional[int] = None) -> SearchResultSet:
        """Run the keyword query and return the ranked result list."""
        return self.service.search_results(query, limit=limit)

    # ------------------------------------------------------------------ #
    # Steps 2-5: compare selected results
    # ------------------------------------------------------------------ #
    def compare(
        self,
        result_set: SearchResultSet,
        result_ids: Optional[Sequence[str]] = None,
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> ComparisonOutcome:
        """Compare selected results and build their comparison table.

        Parameters
        ----------
        result_set:
            The result list returned by :meth:`search`.
        result_ids:
            Ids of the results to compare (the checkbox selection).  Defaults
            to every result in the set.
        size_limit:
            Optional override of the DFS size bound for this comparison (the
            demo lets the user type it next to the comparison button).
        algorithm:
            Optional override of the DFS construction algorithm.

        Raises
        ------
        ComparisonError
            When fewer than two results are selected.
        """
        return self.service.compare_selected(
            result_set,
            result_ids=result_ids,
            size_limit=size_limit,
            algorithm=algorithm,
        )

    def compare_documents(
        self,
        doc_ids: Sequence[str],
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
        query: "str | KeywordQuery" = "document comparison",
    ) -> ComparisonOutcome:
        """Compare whole documents (e.g. the Outdoor Retailer brand scenario).

        The demo's Outdoor Retailer walkthrough compares *brands* — whole
        documents — rather than the minimal SLCA subtrees, so this entry point
        builds one pseudo-result per document root and runs the same
        feature-extraction / DFS-generation / table pipeline over them.
        """
        return self.service.compare_documents(
            doc_ids, size_limit=size_limit, algorithm=algorithm, query=query
        )

    def search_and_compare(
        self,
        query: "str | KeywordQuery",
        top: int = 2,
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> ComparisonOutcome:
        """Convenience: search and compare the top ``top`` results in one call."""
        return self.service.search_and_compare(
            query, top=top, size_limit=size_limit, algorithm=algorithm
        )
