"""The end-to-end XSACT pipeline (Figure 3 of the paper).

The :class:`Xsact` class ties the whole system together the way the demo's web
interface does:

1. the user issues a keyword query → the search engine returns ranked results;
2. the user selects the results to compare (by result id, mirroring the demo's
   checkboxes) and optionally a comparison-table size limit;
3. the result processor identifies entities and extracts features;
4. the DFS generator builds a Differentiation Feature Set per result with the
   chosen algorithm (single-swap or multi-swap);
5. the comparison table is assembled and can be rendered as text / Markdown /
   HTML.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.comparison.render import render_html, render_markdown, render_text
from repro.comparison.table import ComparisonTable
from repro.core.config import DFSConfig
from repro.core.generator import DFSGenerator, GenerationOutcome
from repro.errors import ComparisonError
from repro.features.extractor import FeatureExtractor
from repro.features.statistics import ResultFeatures
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.search.result import SearchResult, SearchResultSet
from repro.storage.corpus import Corpus

__all__ = ["ComparisonOutcome", "Xsact"]


@dataclass
class ComparisonOutcome:
    """Everything produced by one comparison request.

    Attributes
    ----------
    query:
        The keyword query the results came from.
    results:
        The selected results, in the order the user picked them.
    features:
        The extracted feature statistics, aligned with ``results``.
    generation:
        The DFS generation outcome (DFS set, DoD, timing).
    table:
        The comparison table built from the DFS set.
    """

    query: KeywordQuery
    results: List[SearchResult]
    features: List[ResultFeatures]
    generation: GenerationOutcome
    table: ComparisonTable

    @property
    def dod(self) -> int:
        """Total degree of differentiation of the generated DFSs."""
        return self.generation.dod

    def to_text(self) -> str:
        """Plain-text rendering of the comparison table."""
        return render_text(self.table)

    def to_markdown(self) -> str:
        """Markdown rendering of the comparison table."""
        return render_markdown(self.table)

    def to_html(self) -> str:
        """HTML rendering of the comparison table."""
        return render_html(self.table, title=f"XSACT comparison for query: {self.query}")


class Xsact:
    """The XSACT system facade.

    Parameters
    ----------
    corpus:
        The XML corpus to search (one of the dataset generators' outputs or a
        corpus loaded from disk).
    config:
        DFS construction configuration (size limit, threshold).
    algorithm:
        Default DFS construction algorithm (``"multi_swap"`` as in the demo's
        preferred setting; ``"single_swap"`` is the faster alternative).
    """

    def __init__(
        self,
        corpus: Corpus,
        config: Optional[DFSConfig] = None,
        algorithm: str = "multi_swap",
    ):
        self.corpus = corpus
        self.config = config or DFSConfig()
        self.algorithm = algorithm
        self.engine = SearchEngine(corpus)
        self.extractor = FeatureExtractor(statistics=corpus.statistics)
        self.generator = DFSGenerator(self.config)

    # ------------------------------------------------------------------ #
    # Step 1: search
    # ------------------------------------------------------------------ #
    def search(self, query: "str | KeywordQuery", limit: Optional[int] = None) -> SearchResultSet:
        """Run the keyword query and return the ranked result list."""
        return self.engine.search(query, limit=limit)

    # ------------------------------------------------------------------ #
    # Steps 2-5: compare selected results
    # ------------------------------------------------------------------ #
    def compare(
        self,
        result_set: SearchResultSet,
        result_ids: Optional[Sequence[str]] = None,
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> ComparisonOutcome:
        """Compare selected results and build their comparison table.

        Parameters
        ----------
        result_set:
            The result list returned by :meth:`search`.
        result_ids:
            Ids of the results to compare (the checkbox selection).  Defaults
            to every result in the set.
        size_limit:
            Optional override of the DFS size bound for this comparison (the
            demo lets the user type it next to the comparison button).
        algorithm:
            Optional override of the DFS construction algorithm.

        Raises
        ------
        ComparisonError
            When fewer than two results are selected.
        """
        selected = (
            result_set.select(result_ids) if result_ids is not None else list(result_set)
        )
        if len(selected) < 2:
            raise ComparisonError("select at least two results to compare")

        config = self.config
        if size_limit is not None and size_limit != config.size_limit:
            config = DFSConfig(
                size_limit=size_limit,
                threshold_percent=config.threshold_percent,
                use_rates=config.use_rates,
                compare_values=config.compare_values,
                max_rounds=config.max_rounds,
            )

        features = [self.extractor.extract(result) for result in selected]
        generator = DFSGenerator(config)
        generation = generator.generate(features, algorithm=algorithm or self.algorithm)
        table = ComparisonTable.from_dfs_set(
            generation.dfs_set,
            config=config,
            column_titles=[result.title or result.result_id for result in selected],
        )
        return ComparisonOutcome(
            query=result_set.query,
            results=selected,
            features=features,
            generation=generation,
            table=table,
        )

    def compare_documents(
        self,
        doc_ids: Sequence[str],
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
        query: "str | KeywordQuery" = "document comparison",
    ) -> ComparisonOutcome:
        """Compare whole documents (e.g. the Outdoor Retailer brand scenario).

        The demo's Outdoor Retailer walkthrough compares *brands* — whole
        documents — rather than the minimal SLCA subtrees, so this entry point
        builds one pseudo-result per document root and runs the same
        feature-extraction / DFS-generation / table pipeline over them.
        """
        if len(doc_ids) < 2:
            raise ComparisonError("select at least two documents to compare")
        if isinstance(query, str):
            query = KeywordQuery.parse(query)
        results: List[SearchResult] = []
        for position, doc_id in enumerate(doc_ids, start=1):
            document = self.corpus.store.get(doc_id)
            subtree = document.root.copy()
            subtree.relabel()
            results.append(
                SearchResult(
                    result_id=f"R{position}",
                    doc_id=doc_id,
                    match_label=document.root.label,
                    return_label=document.root.label,
                    subtree=subtree,
                    title=SearchEngine._result_title(subtree, doc_id),
                )
            )
        result_set = SearchResultSet(query=query, results=results)
        return self.compare(result_set, size_limit=size_limit, algorithm=algorithm)

    def search_and_compare(
        self,
        query: "str | KeywordQuery",
        top: int = 2,
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
    ) -> ComparisonOutcome:
        """Convenience: search and compare the top ``top`` results in one call."""
        result_set = self.search(query)
        if len(result_set) < 2:
            raise ComparisonError(
                f"query {str(query)!r} returned {len(result_set)} result(s); need at least two to compare"
            )
        ids = [result.result_id for result in result_set.top(top)]
        return self.compare(result_set, result_ids=ids, size_limit=size_limit, algorithm=algorithm)
