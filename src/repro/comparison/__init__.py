"""Comparison tables and the end-to-end XSACT pipeline (the system front end).

The user-visible output of XSACT is the comparison table of Figure 2: rows are
feature types, columns are the selected results, and each cell shows the value
and occurrence statistics of that result's DFS for that type (or is blank when
the type is not in the result's DFS).  This package builds that table from a
DFS set (:mod:`~repro.comparison.table`), renders it as plain text, Markdown or
HTML (:mod:`~repro.comparison.render`), and wires the whole Figure 3
architecture together in :class:`~repro.comparison.pipeline.Xsact`:
search engine → result selection → entity identification → feature extraction →
DFS generation → comparison table.
"""

from repro.comparison.pipeline import ComparisonOutcome, Xsact
from repro.comparison.render import render_html, render_markdown, render_text
from repro.comparison.table import ComparisonCell, ComparisonRow, ComparisonTable

__all__ = [
    "ComparisonCell",
    "ComparisonRow",
    "ComparisonTable",
    "render_text",
    "render_markdown",
    "render_html",
    "Xsact",
    "ComparisonOutcome",
]
