"""Rendering of comparison tables as text, Markdown and HTML.

The demo system shows the table in a browser window; here the same content is
produced in three formats so that the examples can print it to a terminal, the
experiment reports can embed it in Markdown, and an HTML file can still be
opened in a browser for the closest equivalent of the original demo.
"""

from __future__ import annotations

from typing import List

from repro.comparison.table import ComparisonTable

__all__ = ["render_text", "render_markdown", "render_html"]


def render_text(table: ComparisonTable, mark_differentiating: bool = True) -> str:
    """Render the table as aligned plain text."""
    header = ["Feature type"] + list(table.column_titles)
    body: List[List[str]] = []
    for row in table.rows:
        marker = "*" if (mark_differentiating and row.differentiating) else " "
        body.append([f"{marker} {row.label()}"] + [cell.display() for cell in row.cells])

    widths = [len(column) for column in header]
    for line in body:
        for index, cell in enumerate(line):
            widths[index] = max(widths[index], len(cell))

    def format_line(cells: List[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = [format_line(header), separator]
    lines.extend(format_line(line) for line in body)
    lines.append(separator)
    lines.append(f"Degree of differentiation (DoD): {table.dod}")
    if mark_differentiating:
        lines.append("* = feature type on which the selected results differ")
    return "\n".join(lines)


def render_markdown(table: ComparisonTable) -> str:
    """Render the table as GitHub-flavoured Markdown."""
    header = ["Feature type"] + list(table.column_titles)
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join(["---"] * len(header)) + "|")
    for row in table.rows:
        label = f"**{row.label()}**" if row.differentiating else row.label()
        cells = [cell.display() for cell in row.cells]
        lines.append("| " + " | ".join([label] + cells) + " |")
    lines.append("")
    lines.append(f"_DoD = {table.dod}_")
    return "\n".join(lines)


def render_html(table: ComparisonTable, title: str = "XSACT comparison table") -> str:
    """Render the table as a standalone HTML page."""
    def escape(text: str) -> str:
        return (
            text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )

    rows_html: List[str] = []
    for row in table.rows:
        css_class = "diff" if row.differentiating else ""
        cells = "".join(f"<td>{escape(cell.display())}</td>" for cell in row.cells)
        rows_html.append(
            f'<tr class="{css_class}"><th scope="row">{escape(row.label())}</th>{cells}</tr>'
        )
    header_cells = "".join(f"<th>{escape(title_)}</th>" for title_ in table.column_titles)
    return f"""<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{escape(title)}</title>
<style>
  body {{ font-family: sans-serif; margin: 2em; }}
  table {{ border-collapse: collapse; }}
  th, td {{ border: 1px solid #999; padding: 0.4em 0.8em; text-align: left; }}
  tr.diff th, tr.diff td {{ background: #fdf3d0; }}
  caption {{ caption-side: bottom; padding-top: 0.6em; font-style: italic; }}
</style>
</head>
<body>
<h1>{escape(title)}</h1>
<table>
<caption>Degree of differentiation (DoD): {table.dod}; highlighted rows differentiate the results.</caption>
<tr><th>Feature type</th>{header_cells}</tr>
{"".join(rows_html)}
</table>
</body>
</html>
"""
