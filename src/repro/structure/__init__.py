"""Structural index subsystem: the XPath-accelerator encoding.

Assigns every element node of every document ``(pre, post, level, tag_id)``
so that ancestor/descendant tests are two integer comparisons and axis scans
are binary searches over per-tag occurrence lists — see
:mod:`repro.structure.encoding` for the encoding and
:mod:`repro.structure.table` for the corpus-level, lazily-populated table.
The structured match semantics built on top (``slca_struct``, axis
constraints, tag-path filters) lives in :mod:`repro.search.structural`;
snapshot persistence of the tag tables lives in
:mod:`repro.storage.snapshot`.  ``docs/structure.md`` has the full story.
"""

from repro.structure.encoding import DocumentStructure, TagDictionary
from repro.structure.table import StructuralTable

__all__ = ["DocumentStructure", "TagDictionary", "StructuralTable"]
