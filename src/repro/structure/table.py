"""Corpus-level registry of per-document structural indexes.

A :class:`StructuralTable` hangs off every
:class:`~repro.storage.corpus.Corpus` (and, through the shard corpora, off
every shard of a :class:`~repro.storage.sharded.ShardedCorpus` — structural
queries are shard-transparent because each sub-engine sees its own shard's
table).  It is *lazy by default*: a fresh build or an old snapshot starts
with an empty cache and a loader that fetches the document root on first
structural access, so corpora that never see a structured query never pay
the indexing cost and lazily-loaded stores only materialise the documents
that matches actually land in.

Snapshots with a persisted structural section restore through
:meth:`StructuralTable.restore` instead: the per-document encodings arrive
pre-computed (derived from the label tables plus the stored tag arrays) and
the loader is kept only for documents added after the load.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.structure.encoding import DocumentStructure, TagDictionary
from repro.xmlmodel.node import XMLNode

__all__ = ["StructuralTable"]

#: Fetches a document's root element by id — bound to the owning corpus's
#: store.  May raise :class:`~repro.errors.DocumentNotFoundError`.
RootLoader = Callable[[str], XMLNode]


class StructuralTable:
    """Per-document :class:`DocumentStructure` instances behind one lock.

    Thread-safe: the service evaluates queries concurrently, and two threads
    racing on the same uncached document both compute the (identical)
    structure — ``setdefault`` under the lock keeps one canonical instance.
    The shared :class:`TagDictionary` interns under its own lock, so ids stay
    consistent across concurrently-built documents.
    """

    def __init__(self, loader: RootLoader, tags: Optional[TagDictionary] = None):
        self._loader = loader
        self.tags = tags if tags is not None else TagDictionary()
        self._documents: Dict[str, DocumentStructure] = {}
        self._lock = threading.Lock()
        self._computed = 0
        self._restored = 0

    @classmethod
    def restore(
        cls,
        loader: RootLoader,
        tags: TagDictionary,
        documents: Dict[str, DocumentStructure],
    ) -> "StructuralTable":
        """Assemble a table from snapshot-decoded parts (no recomputation)."""
        table = cls(loader, tags=tags)
        table._documents = dict(documents)
        table._restored = len(documents)
        return table

    def clone(self, loader: RootLoader) -> "StructuralTable":
        """Copy for a new corpus generation, rebound to that generation's store.

        The per-document cache is copied (each :class:`DocumentStructure` is
        immutable once built, so instances are shared); the
        :class:`TagDictionary` is shared outright — it interns append-only
        under its own lock, so tag ids stay stable across generations.
        """
        with self._lock:
            documents = dict(self._documents)
            computed = self._computed
            restored = self._restored
        table = StructuralTable.restore(loader, self.tags, documents)
        table._computed = computed
        table._restored = restored
        return table

    def get(self, doc_id: str) -> DocumentStructure:
        """The structural index of one document, computed on first access.

        Raises
        ------
        DocumentNotFoundError
            If the owning store has no document ``doc_id``.
        """
        with self._lock:
            cached = self._documents.get(doc_id)
        if cached is not None:
            return cached
        # Compute outside the lock: the loader may decode a lazy record, and
        # tag interning is independently locked.
        structure = DocumentStructure.from_tree(self._loader(doc_id), self.tags)
        with self._lock:
            self._computed += 1
            return self._documents.setdefault(doc_id, structure)

    def peek(self, doc_id: str) -> Optional[DocumentStructure]:
        """The cached structure of ``doc_id``, or ``None`` — never computes."""
        with self._lock:
            return self._documents.get(doc_id)

    def discard(self, doc_id: str) -> None:
        """Drop one document's cached structure (after a document removal)."""
        with self._lock:
            self._documents.pop(doc_id, None)

    def clear(self) -> None:
        """Drop every cached structure (after a corpus refresh)."""
        with self._lock:
            self._documents.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for tests and operators: cache size and where it came from."""
        with self._lock:
            return {
                "documents": len(self._documents),
                "computed": self._computed,
                "restored": self._restored,
                "tags": len(self.tags),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    def __repr__(self) -> str:
        return f"StructuralTable(documents={len(self)}, tags={len(self.tags)})"
