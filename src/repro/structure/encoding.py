"""Pre/post-order structural encoding of one document tree.

The search layer climbs Dewey labels: an ancestor test compares component
prefixes (``O(depth)``) and "all descendants with tag t" walks the subtree.
The XPath-accelerator encoding replaces both with integer arithmetic.  Every
*element* node of a document gets

* ``pre`` — its position in the pre-order walk (0 is the root),
* ``post`` — its position in the post-order walk,
* ``level`` — its depth (``len(label)``),
* ``tag_id`` — its tag name interned through a :class:`TagDictionary`,

and the classic interval characterisation holds:

    ``a`` is a proper descendant of ``b``  ⇔  ``pre_a > pre_b ∧ post_a < post_b``
                                           ⇔  ``pre_b < pre_a < end_b``

where ``end_b`` is the exclusive end of ``b``'s pre-order window (``b``'s
subtree is exactly the contiguous pre range ``[pre_b, end_b)``).  Containment
becomes two integer comparisons, and "descendants of ``b`` with tag ``t``"
becomes a binary search over ``t``'s sorted occurrence list restricted to the
window ``(pre_b, end_b)`` — no tree walk, no label prefix comparisons.

A key economy of this module: *everything except the tag ids derives from the
Dewey label table alone*.  The labels arrive in pre-order (document order), so
``pre`` is the list position and ``level`` the label length, and one stack
pass over the depths reconstructs ``parent``, ``post`` and the subtree
windows in ``O(n)``.  Snapshots therefore persist only the tag dictionary and
per-document tag-id arrays (see :mod:`repro.storage.snapshot`); the rest is
recomputed from the label tables that v2 files already store eagerly, keeping
lazy corpora lazy.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StructureError
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["TagDictionary", "DocumentStructure"]


class TagDictionary:
    """Interns element tag names to dense integer ids.

    One dictionary is shared across all documents of a corpus (see
    :class:`~repro.structure.table.StructuralTable`), so equal tags compare
    as equal integers across documents.  Ids are assigned in first-seen
    order; they are an internal detail of the owning table, not stable
    across processes.  :meth:`intern` is lock-guarded because lazily-built
    document structures may intern concurrently from service threads;
    :meth:`lookup` and :meth:`tag` are single atomic dict/list probes.
    """

    __slots__ = ("_ids", "_tags", "_lock")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._tags: List[str] = []
        self._lock = threading.Lock()

    def intern(self, tag: str) -> int:
        """Return the id of ``tag``, assigning the next free id if new."""
        tag_id = self._ids.get(tag)
        if tag_id is not None:
            return tag_id
        with self._lock:
            tag_id = self._ids.get(tag)
            if tag_id is None:
                tag_id = len(self._tags)
                self._tags.append(tag)
                self._ids[tag] = tag_id
            return tag_id

    def lookup(self, tag: str) -> Optional[int]:
        """Return the id of ``tag``, or ``None`` if it was never interned."""
        return self._ids.get(tag)

    def tag(self, tag_id: int) -> str:
        """Return the tag name for an id.

        Raises
        ------
        StructureError
            If ``tag_id`` was never assigned.
        """
        if not 0 <= tag_id < len(self._tags):
            raise StructureError(
                f"tag id {tag_id} is not in the dictionary (it holds {len(self._tags)} tags)"
            )
        return self._tags[tag_id]

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, tag: str) -> bool:
        return tag in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._tags)


class DocumentStructure:
    """The structural index of one document's element nodes.

    All arrays are indexed by ``pre`` (the pre-order element position, which
    equals the position in the snapshot label table):

    * ``labels[pre]`` — the element's Dewey label (document order);
    * ``post[pre]`` — its post-order number;
    * ``level[pre]`` — its depth (``len(label)``);
    * ``parent[pre]`` — the parent's pre number, ``-1`` for the root;
    * ``end[pre]`` — exclusive end of the subtree's pre window;
    * ``tag_ids[pre]`` — the tag id in the owning :class:`TagDictionary`.

    Instances are immutable after construction and safe to share between
    threads (the two lazy caches — label→pre and per-tag occurrence lists —
    are built idempotently and published with atomic assignments).
    """

    __slots__ = ("labels", "post", "level", "parent", "end", "tag_ids", "_pre_by_label", "_occurrences")

    labels: List[DeweyLabel]
    post: List[int]
    level: List[int]
    parent: List[int]
    end: List[int]
    tag_ids: List[int]
    _pre_by_label: Optional[Dict[DeweyLabel, int]]
    _occurrences: Optional[Dict[int, List[int]]]

    def __init__(self) -> None:
        raise StructureError(
            "use DocumentStructure.from_tree or DocumentStructure.from_labels"
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tree(cls, root: XMLNode, tags: TagDictionary) -> "DocumentStructure":
        """Index a live tree, interning its tags into ``tags``."""
        labels: List[DeweyLabel] = []
        tag_ids: List[int] = []
        for node in root.iter_elements():
            labels.append(node.label)
            tag_ids.append(tags.intern(node.tag or ""))
        return cls.from_labels(labels, tag_ids)

    @classmethod
    def from_labels(
        cls, labels: Sequence[DeweyLabel], tag_ids: Sequence[int]
    ) -> "DocumentStructure":
        """Derive the full encoding from a pre-order label table plus tag ids.

        This is the snapshot-restore path: the label table is exactly what a
        v2 directory entry stores, so only the tag ids need to travel in the
        file.  One stack pass over the depths recovers parent links, subtree
        windows and post-order numbers in ``O(n)``.

        Raises
        ------
        StructureError
            If the two sequences disagree in length, or if the labels are not
            a single-rooted pre-order walk (every non-root label must extend
            the label on top of the depth stack by exactly one component).
        """
        count = len(labels)
        if len(tag_ids) != count:
            raise StructureError(
                f"label table has {count} entries, tag table has {len(tag_ids)}"
            )
        structure = cls.__new__(cls)
        structure.labels = list(labels)
        structure.tag_ids = list(tag_ids)
        structure._pre_by_label = None
        structure._occurrences = None

        level = [0] * count
        parent = [-1] * count
        end = [count] * count
        post = [0] * count
        stack: List[int] = []
        counter = 0
        for pre, label in enumerate(structure.labels):
            depth = len(label)
            level[pre] = depth
            while stack and level[stack[-1]] >= depth:
                closed = stack.pop()
                end[closed] = pre
                post[closed] = counter
                counter += 1
            if stack:
                parent[pre] = stack[-1]
                top = structure.labels[stack[-1]]
                if depth != len(top) + 1 or label.components[:-1] != top.components:
                    raise StructureError(
                        f"label table is not a pre-order walk: {label} does not "
                        f"extend its parent {top}"
                    )
            elif pre != 0:
                raise StructureError(
                    f"label table is not single-rooted: {label} has no ancestor on the stack"
                )
            elif depth != 0:
                raise StructureError(f"first label must be the document root, got {label}")
            stack.append(pre)
        while stack:
            closed = stack.pop()
            end[closed] = count
            post[closed] = counter
            counter += 1
        structure.level = level
        structure.parent = parent
        structure.end = end
        structure.post = post
        return structure

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def pre_of(self, label: DeweyLabel) -> int:
        """The pre number of the element at ``label``.

        Raises
        ------
        StructureError
            If no element carries ``label`` — the index is stale relative to
            the caller's view of the document.
        """
        mapping = self._pre_by_label
        if mapping is None:
            # Benign construction race: both builders produce the identical
            # dict and the attribute assignment is atomic.
            mapping = {label: pre for pre, label in enumerate(self.labels)}
            self._pre_by_label = mapping
        pre = mapping.get(label)
        if pre is None:
            raise StructureError(f"no element at label {label} in the structural index")
        return pre

    def tag_occurrences(self, tag_id: int) -> Sequence[int]:
        """Sorted pre numbers of every element with tag ``tag_id``."""
        occurrences = self._occurrences
        if occurrences is None:
            occurrences = {}
            for pre, tag in enumerate(self.tag_ids):
                occurrences.setdefault(tag, []).append(pre)
            self._occurrences = occurrences
        return occurrences.get(tag_id, ())

    # ------------------------------------------------------------------ #
    # Interval predicates (the O(1) tests)
    # ------------------------------------------------------------------ #
    def is_descendant(self, a: int, b: int) -> bool:
        """Whether ``a`` is a *proper* descendant of ``b``: two comparisons."""
        return a > b and self.post[a] < self.post[b]

    def is_ancestor(self, a: int, b: int) -> bool:
        """Whether ``a`` is a *proper* ancestor of ``b``."""
        return a < b and self.post[a] > self.post[b]

    def lca(self, a: int, b: int) -> int:
        """Pre number of the lowest common ancestor of ``a`` and ``b``.

        Walks ``min(a, b)``'s parent chain until the window covers the other
        node — ``O(depth)`` like the Dewey prefix version, but on integers.
        """
        if a > b:
            a, b = b, a
        node = a
        while node != -1:
            if self.end[node] > b:
                return node
            node = self.parent[node]
        raise StructureError(f"nodes {a} and {b} share no ancestor")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Axis scans (window-bounded — no tree walks)
    # ------------------------------------------------------------------ #
    def descendants_with_tag(self, pre: int, tag_id: int) -> List[int]:
        """Pre numbers of ``pre``'s proper descendants with tag ``tag_id``.

        Two binary searches bound the tag's occurrence list to the subtree
        window ``(pre, end[pre])`` — cost ``O(log occ + answer)`` instead of
        the ``O(subtree)`` Dewey prefix walk.
        """
        occurrences = self.tag_occurrences(tag_id)
        low = bisect_right(occurrences, pre)
        high = bisect_left(occurrences, self.end[pre])
        return list(occurrences[low:high])

    def children_with_tag(self, pre: int, tag_id: int) -> List[int]:
        """Like :meth:`descendants_with_tag` restricted to direct children."""
        parent = self.parent
        return [node for node in self.descendants_with_tag(pre, tag_id) if parent[node] == pre]

    def nearest_ancestor_with_tag(self, pre: int, tag_id: int) -> Optional[int]:
        """Pre number of the closest proper ancestor with tag ``tag_id``."""
        node = self.parent[pre]
        while node != -1:
            if self.tag_ids[node] == tag_id:
                return node
            node = self.parent[node]
        return None

    def path_ends_with(self, pre: int, path_tag_ids: Sequence[int]) -> bool:
        """Whether the root-to-``pre`` tag path ends with ``path_tag_ids``."""
        node = pre
        for tag_id in reversed(path_tag_ids):
            if node == -1 or self.tag_ids[node] != tag_id:
                return False
            node = self.parent[node]
        return True

    def anchor_for(self, pre: int, path_tag_ids: Sequence[int]) -> Optional[int]:
        """Innermost ancestor-or-self whose tag path ends with ``path_tag_ids``.

        This is the ``within`` tag-path filter of structured queries: a match
        inside ``movie/cast`` re-anchors to the enclosing ``cast`` element
        whose parent is a ``movie``.  Returns ``None`` when no ancestor-or-
        self satisfies the path.
        """
        node = pre
        while node != -1:
            if self.path_ends_with(node, path_tag_ids):
                return node
            node = self.parent[node]
        return None

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.labels)

    def signature(self) -> Tuple[Tuple[int, int, int, int], ...]:
        """The full per-element encoding, for equality checks in tests."""
        return tuple(
            (self.post[pre], self.level[pre], self.parent[pre], self.tag_ids[pre])
            for pre in range(len(self.labels))
        )

    def __repr__(self) -> str:
        return f"DocumentStructure(elements={len(self.labels)})"
