"""Command-line interface for the XSACT reproduction.

The demo system is a web application; this CLI offers the equivalent
interactions from a terminal so the system can be exercised without writing
Python:

* ``repro-xsact search``  — run a keyword query against one of the synthetic
  corpora and list the ranked results (the demo's result page).
* ``repro-xsact compare`` — run a query and build the comparison table for the
  top-N results (the demo's "comparison" button), optionally writing HTML.
* ``repro-xsact figure4`` — regenerate the Figure 4 experiment table.
* ``repro-xsact save-snapshot`` — persist a corpus as one binary snapshot
  file, so later invocations cold-start with ``--snapshot`` in a fraction of
  the parse-and-index time.

Every command that reads a corpus accepts three sources: a generated
``--dataset`` (default), a ``--corpus-dir`` of ``.xml`` files, or a
``--snapshot`` file written by ``save-snapshot``.

Examples
--------
::

    python -m repro.cli search --dataset products --query "tomtom gps"
    python -m repro.cli compare --dataset products --query "tomtom gps" --top 2 --size-limit 6
    python -m repro.cli figure4
    python -m repro.cli save-snapshot --dataset imdb --output imdb.snap
    python -m repro.cli search --snapshot imdb.snap --query "drama war"
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.comparison.pipeline import Xsact
from repro.core.config import DFSConfig
from repro.datasets.imdb import generate_imdb_corpus
from repro.datasets.outdoor_retailer import generate_outdoor_corpus
from repro.datasets.product_reviews import generate_product_reviews_corpus
from repro.errors import ReproError
from repro.experiments.figure4 import run_figure4
from repro.experiments.report import format_measurements
from repro.storage.corpus import Corpus

__all__ = ["build_parser", "main"]

_DATASETS: Dict[str, Callable[[], Corpus]] = {
    "products": generate_product_reviews_corpus,
    "outdoor": generate_outdoor_corpus,
    "imdb": generate_imdb_corpus,
}


def _non_negative_int(text: str) -> int:
    """Argparse type for counts: rejects negatives with a clear message."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-xsact",
        description="XSACT (VLDB 2010) reproduction: compare structured search results.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    search = subparsers.add_parser("search", help="run a keyword query and list results")
    _add_corpus_arguments(search)
    search.add_argument("--query", required=True, help="keyword query, e.g. 'tomtom gps'")
    search.add_argument(
        "--limit",
        type=_non_negative_int,
        default=None,
        help="maximum number of results to list",
    )

    compare = subparsers.add_parser("compare", help="compare the top results of a query")
    _add_corpus_arguments(compare)
    compare.add_argument("--query", required=True, help="keyword query, e.g. 'tomtom gps'")
    compare.add_argument(
        "--top", type=_non_negative_int, default=2, help="number of top results to compare"
    )
    compare.add_argument("--size-limit", type=int, default=5, help="DFS size bound L")
    compare.add_argument(
        "--algorithm",
        default="multi_swap",
        choices=["top_significance", "random", "greedy", "single_swap", "multi_swap"],
        help="DFS construction algorithm",
    )
    compare.add_argument(
        "--format",
        default="text",
        choices=["text", "markdown", "html"],
        help="output format of the comparison table",
    )
    compare.add_argument("--output", default=None, help="write the table to this file instead of stdout")

    figure4 = subparsers.add_parser("figure4", help="regenerate the Figure 4 experiment")
    figure4.add_argument("--size-limit", type=int, default=5, help="DFS size bound L")

    save_snapshot = subparsers.add_parser(
        "save-snapshot",
        help="persist a corpus as one binary snapshot file for fast cold start",
    )
    _add_corpus_arguments(save_snapshot)
    save_snapshot.add_argument(
        "--output", required=True, help="path of the snapshot file to write"
    )
    return parser


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        default="products",
        choices=sorted(_DATASETS),
        help="synthetic corpus to search (default: products)",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--corpus-dir",
        default=None,
        help="load a corpus from a directory of .xml files instead of generating one",
    )
    source.add_argument(
        "--snapshot",
        default=None,
        help="load a corpus from a binary snapshot file (see the save-snapshot command)",
    )


def _load_corpus(arguments: argparse.Namespace) -> Corpus:
    if arguments.snapshot:
        return Corpus.load(arguments.snapshot)
    if arguments.corpus_dir:
        return Corpus.from_directory(arguments.corpus_dir)
    return _DATASETS[arguments.dataset]()


def _command_search(arguments: argparse.Namespace, out) -> int:
    corpus = _load_corpus(arguments)
    xsact = Xsact(corpus)
    result_set = xsact.search(arguments.query, limit=arguments.limit)
    print(f'{len(result_set)} result(s) for query "{arguments.query}" on corpus {corpus.name!r}:', file=out)
    for result in result_set:
        print(f"  [{result.result_id}] {result.title}  (doc={result.doc_id}, score={result.score:.3f})", file=out)
    return 0


def _command_compare(arguments: argparse.Namespace, out) -> int:
    corpus = _load_corpus(arguments)
    config = DFSConfig(size_limit=arguments.size_limit)
    xsact = Xsact(corpus, config=config, algorithm=arguments.algorithm)
    outcome = xsact.search_and_compare(
        arguments.query, top=arguments.top, size_limit=arguments.size_limit
    )
    if arguments.format == "markdown":
        rendered = outcome.to_markdown()
    elif arguments.format == "html":
        rendered = outcome.to_html()
    else:
        rendered = outcome.to_text()
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.write("\n")
        print(f"comparison table (DoD={outcome.dod}) written to {arguments.output}", file=out)
    else:
        print(rendered, file=out)
    return 0


def _command_figure4(arguments: argparse.Namespace, out) -> int:
    rows = run_figure4(config=DFSConfig(size_limit=arguments.size_limit))
    print(format_measurements(rows, title="Figure 4: DoD and construction time per query"), file=out)
    return 0


def _command_save_snapshot(arguments: argparse.Namespace, out) -> int:
    corpus = _load_corpus(arguments)
    written = corpus.save(arguments.output)
    size = written.stat().st_size
    print(
        f"snapshot of corpus {corpus.name!r} ({len(corpus.store)} documents, "
        f"{size} bytes) written to {written}",
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "search": _command_search,
        "compare": _command_compare,
        "figure4": _command_figure4,
        "save-snapshot": _command_save_snapshot,
    }
    try:
        return handlers[arguments.command](arguments, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
