"""Command-line interface for the XSACT reproduction.

The demo system is a web application; this CLI offers the equivalent
interactions from a terminal so the system can be exercised without writing
Python:

* ``repro-xsact search``  — run a keyword query against one of the synthetic
  corpora and list the ranked results (the demo's result page).
* ``repro-xsact compare`` — run a query and build the comparison table for the
  top-N results (the demo's "comparison" button), optionally writing HTML.
* ``repro-xsact serve``   — start the HTTP JSON front-end (the demo's web
  application itself): ``GET /search`` with cursor pagination,
  ``POST /compare``, ``GET /healthz``, ``GET /stats``.
* ``repro-xsact figure4`` — regenerate the Figure 4 experiment table.
* ``repro-xsact save-snapshot`` — persist a corpus as one binary snapshot
  file, so later invocations cold-start with ``--snapshot`` in a fraction of
  the parse-and-index time.
* ``repro-xsact lint`` — run the project's static-analysis battery
  (:mod:`repro.analysis`) over the source tree; the CI gate runs exactly
  this command.

Every command that reads a corpus accepts exactly one of three sources: a
generated ``--dataset``, a ``--corpus-dir`` of ``.xml`` files, or a
``--snapshot`` file written by ``save-snapshot``.  The sources are mutually
exclusive — naming two explicitly is an argument error (``--dataset
products`` with no explicit source remains the default).

All corpus-reading commands go through the service layer
(:class:`~repro.service.service.SearchService`), the same entry point the
HTTP front-end uses.

Examples
--------
::

    python -m repro.cli search --dataset products --query "tomtom gps"
    python -m repro.cli compare --dataset products --query "tomtom gps" --top 2 --size-limit 6
    python -m repro.cli figure4
    python -m repro.cli save-snapshot --dataset imdb --output imdb.snap
    python -m repro.cli search --snapshot imdb.snap --query "drama war"
    python -m repro.cli serve --snapshot imdb.snap --port 8080
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.runner import add_lint_arguments, run_lint
from repro.core.config import DFSConfig
from repro.datasets.imdb import generate_imdb_corpus
from repro.datasets.outdoor_retailer import generate_outdoor_corpus
from repro.datasets.product_reviews import generate_product_reviews_corpus
from repro.errors import ReproError
from repro.experiments.figure4 import run_figure4
from repro.search.structural import AXES, StructuredQuery, parse_tag_path
from repro.experiments.report import format_measurements
from repro.service.http import create_server
from repro.service.service import DEFAULT_MAX_PAGE_SIZE, SearchService
from repro.storage.corpus import Corpus
from repro.storage.sharded import ShardedCorpus

__all__ = ["build_parser", "main"]

_DATASETS: Dict[str, Callable[[], Corpus]] = {
    "products": generate_product_reviews_corpus,
    "outdoor": generate_outdoor_corpus,
    "imdb": generate_imdb_corpus,
}

_DEFAULT_DATASET = "products"


def _non_negative_int(text: str) -> int:
    """Argparse type for counts: rejects negatives with a clear message."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type for sizes that must be at least one."""
    value = _non_negative_int(text)
    if value == 0:
        raise argparse.ArgumentTypeError("must be positive, got 0")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-xsact",
        description="XSACT (VLDB 2010) reproduction: compare structured search results.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    search = subparsers.add_parser("search", help="run a keyword query and list results")
    _add_corpus_arguments(search)
    search.add_argument("--query", required=True, help="keyword query, e.g. 'tomtom gps'")
    search.add_argument(
        "--semantics",
        default=None,
        help="match semantics: slca, elca, slca_struct, or any registered name "
        "(default: slca, or slca_struct when a structural constraint is given)",
    )
    search.add_argument(
        "--limit",
        type=_non_negative_int,
        default=None,
        help="maximum number of results to list",
    )
    search.add_argument(
        "--within",
        action="append",
        default=None,
        metavar="TAG[/TAG...]",
        help="structural filter: re-anchor matches to their innermost enclosing "
        "element whose tag path ends with this path (repeatable; repeats extend "
        "the path)",
    )
    search.add_argument(
        "--axis",
        default=None,
        choices=list(AXES),
        help="axis step applied to each match (use with --axis-tag)",
    )
    search.add_argument(
        "--axis-tag",
        default=None,
        metavar="TAG",
        help="tag the axis step selects, e.g. --axis descendant --axis-tag review",
    )

    compare = subparsers.add_parser("compare", help="compare the top results of a query")
    _add_corpus_arguments(compare)
    compare.add_argument("--query", required=True, help="keyword query, e.g. 'tomtom gps'")
    compare.add_argument(
        "--semantics",
        default="slca",
        help="match semantics: slca (default), elca, or any registered name",
    )
    compare.add_argument(
        "--top", type=_non_negative_int, default=2, help="number of top results to compare"
    )
    compare.add_argument("--size-limit", type=int, default=5, help="DFS size bound L")
    compare.add_argument(
        "--algorithm",
        default="multi_swap",
        choices=["top_significance", "random", "greedy", "single_swap", "multi_swap"],
        help="DFS construction algorithm",
    )
    compare.add_argument(
        "--format",
        default="text",
        choices=["text", "markdown", "html"],
        help="output format of the comparison table",
    )
    compare.add_argument("--output", default=None, help="write the table to this file instead of stdout")

    serve = subparsers.add_parser(
        "serve", help="start the HTTP JSON front-end over a corpus"
    )
    _add_corpus_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="address to bind (default: 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=_non_negative_int,
        default=8080,
        help="port to bind; 0 picks a free port (default: 8080)",
    )
    serve.add_argument(
        "--page-size",
        type=_positive_int,
        default=10,
        help="default /search page size (default: 10)",
    )
    serve.add_argument(
        "--writable",
        action="store_true",
        help="enable the mutation endpoints (POST/DELETE /documents); "
        "read-only services answer them with 403",
    )
    serve.add_argument(
        "--snapshot-every",
        type=_positive_int,
        default=None,
        help="with --writable: re-snapshot the corpus in the background after every "
        "N applied mutations (requires --snapshot-path or --snapshot)",
    )
    serve.add_argument(
        "--snapshot-path",
        default=None,
        help="file the background re-snapshot writes to "
        "(default: the --snapshot file the corpus was loaded from)",
    )
    _add_shards_argument(serve)

    figure4 = subparsers.add_parser("figure4", help="regenerate the Figure 4 experiment")
    figure4.add_argument("--size-limit", type=int, default=5, help="DFS size bound L")

    save_snapshot = subparsers.add_parser(
        "save-snapshot",
        help="persist a corpus as one binary snapshot file for fast cold start",
    )
    _add_corpus_arguments(save_snapshot)
    save_snapshot.add_argument(
        "--output", required=True, help="path of the snapshot file to write"
    )
    save_snapshot.add_argument(
        "--format",
        default="v2",
        choices=["v1", "v2"],
        help="snapshot layout: v2 (default) loads lazily via mmap, v1 is the legacy eager layout",
    )
    save_snapshot.add_argument(
        "--compress",
        action="store_true",
        help="zlib-compress individual document records (v2 only)",
    )
    _add_shards_argument(save_snapshot)

    lint = subparsers.add_parser(
        "lint",
        help="run the project static-analysis battery (see docs/analysis.md)",
    )
    add_lint_arguments(lint)
    return parser


def _add_shards_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="partition the corpus across N shards (parallel shard build, "
        "fan-out query engine; save-snapshot writes a manifest plus one v2 "
        "file per shard — a manifest loaded via --snapshot is already sharded)",
    )


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    # All three corpus sources live in one mutually exclusive group, so an
    # explicit `--dataset imdb --snapshot x.snap` is an argument error
    # instead of the dataset flag being silently ignored.  argparse only
    # flags *explicitly supplied* group members as conflicts, so the
    # `--dataset` default keeps working when another source is chosen.
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        default=_DEFAULT_DATASET,
        choices=sorted(_DATASETS),
        help="synthetic corpus to search (default: products)",
    )
    source.add_argument(
        "--corpus-dir",
        default=None,
        help="load a corpus from a directory of .xml files instead of generating one",
    )
    source.add_argument(
        "--snapshot",
        default=None,
        help="load a corpus from a binary snapshot file (see the save-snapshot command); "
        "the format (v1 eager / v2 lazy) is auto-detected",
    )
    # Outside the exclusive group: it tunes --snapshot rather than competing
    # with it, and is simply ignored for the other (always-eager) sources.
    parser.add_argument(
        "--max-materialised",
        type=_non_negative_int,
        default=None,
        help="with a v2 --snapshot: LRU bound on concurrently decoded documents "
        "(0 disables eviction; default 1024)",
    )


def _load_corpus(arguments: argparse.Namespace):
    if arguments.snapshot:
        corpus = Corpus.load(
            arguments.snapshot, max_materialised=arguments.max_materialised
        )
    elif arguments.corpus_dir:
        corpus = Corpus.from_directory(arguments.corpus_dir)
    else:
        corpus = _DATASETS[arguments.dataset]()
    shards = getattr(arguments, "shards", None)
    if shards:
        if isinstance(corpus, ShardedCorpus):
            raise ReproError(
                f"snapshot {arguments.snapshot} is already a shard manifest; "
                "--shards cannot reshard it (rebuild from a dataset or corpus "
                "directory instead)"
            )
        # Process-pool build with automatic thread fallback — the CLI paths
        # are where corpora get big enough for the parallel build to matter.
        corpus = ShardedCorpus.from_corpus(corpus, shards, parallel="process")
    return corpus


def _command_search(arguments: argparse.Namespace, out) -> int:
    service = SearchService(_load_corpus(arguments))
    within: tuple = ()
    if arguments.within:
        within = tuple(
            step for part in arguments.within for step in parse_tag_path(part)
        )
    constrained = bool(within) or arguments.axis is not None
    if constrained:
        query: "str | StructuredQuery" = StructuredQuery.from_parts(
            arguments.query,
            within=within,
            axis=arguments.axis,
            axis_tag=arguments.axis_tag,
        )
    else:
        if arguments.axis_tag is not None:
            raise ReproError("--axis-tag requires --axis")
        query = arguments.query
    semantics = arguments.semantics
    if semantics is None:
        # Same default rule as the HTTP front-end: structural constraints
        # need the structure-aware semantics.
        semantics = "slca_struct" if constrained else "slca"
    result_set = service.search_results(query, semantics=semantics, limit=arguments.limit)
    print(
        f'{len(result_set)} result(s) for query "{arguments.query}" '
        f"on corpus {service.corpus.name!r} under {semantics}:",
        file=out,
    )
    for result in result_set:
        print(f"  [{result.result_id}] {result.title}  (doc={result.doc_id}, score={result.score:.3f})", file=out)
    return 0


def _command_compare(arguments: argparse.Namespace, out) -> int:
    config = DFSConfig(size_limit=arguments.size_limit)
    service = SearchService(_load_corpus(arguments), config=config, algorithm=arguments.algorithm)
    outcome = service.search_and_compare(
        arguments.query,
        top=arguments.top,
        size_limit=arguments.size_limit,
        semantics=arguments.semantics,
    )
    if arguments.format == "markdown":
        rendered = outcome.to_markdown()
    elif arguments.format == "html":
        rendered = outcome.to_html()
    else:
        rendered = outcome.to_text()
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.write("\n")
        print(f"comparison table (DoD={outcome.dod}) written to {arguments.output}", file=out)
    else:
        print(rendered, file=out)
    return 0


def _command_serve(arguments: argparse.Namespace, out) -> int:
    corpus = _load_corpus(arguments)
    snapshot_path = arguments.snapshot_path or arguments.snapshot
    if arguments.snapshot_every is not None and not arguments.writable:
        print("error: --snapshot-every needs --writable", file=out, flush=True)
        return 2
    if arguments.snapshot_every is not None and snapshot_path is None:
        print(
            "error: --snapshot-every needs --snapshot-path (or a --snapshot to reuse)",
            file=out,
            flush=True,
        )
        return 2
    # The service clamps per-request page sizes to max_page_size; widen the
    # ceiling when the operator asks for a default above it, instead of
    # rejecting the configuration at startup.
    service = SearchService(
        corpus,
        default_page_size=arguments.page_size,
        max_page_size=max(DEFAULT_MAX_PAGE_SIZE, arguments.page_size),
        writable=arguments.writable,
        snapshot_path=snapshot_path if arguments.snapshot_every is not None else None,
        snapshot_every=arguments.snapshot_every,
    )
    server = create_server(service, host=arguments.host, port=arguments.port, out=out)
    host, port = server.server_address[:2]
    store_stats = corpus.store.stats()
    backend = store_stats["backend"]
    if backend == "sharded":
        backend = f"sharded[{store_stats['shard_count']}]"
    mode = "writable" if arguments.writable else "read-only"
    print(
        f"serving corpus {corpus.name!r} ({len(corpus.store)} documents, {backend} store, "
        f"{mode}) on http://{host}:{port} — GET /search, POST /compare, "
        f"POST /documents, GET /healthz, GET /stats",
        file=out,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        stats = service.stats()
        cache = stats["cache"]
        requests = stats["requests"]
        print(
            f"served {requests['search']} search / {requests['compare']} compare "
            f"request(s); cache: {cache['hits']} hit(s), {cache['misses']} miss(es), "
            f"{cache['entries']} entr(ies) holding {cache['cached_results']} result(s)",
            file=out,
            flush=True,
        )
    return 0


def _command_figure4(arguments: argparse.Namespace, out) -> int:
    rows = run_figure4(config=DFSConfig(size_limit=arguments.size_limit))
    print(format_measurements(rows, title="Figure 4: DoD and construction time per query"), file=out)
    return 0


def _command_save_snapshot(arguments: argparse.Namespace, out) -> int:
    corpus = _load_corpus(arguments)
    format_version = 1 if arguments.format == "v1" else 2
    written = corpus.save(
        arguments.output, format=format_version, compress=arguments.compress
    )
    size = written.stat().st_size
    layout = f"format {arguments.format}"
    if isinstance(corpus, ShardedCorpus):
        # The manifest is tiny; report the full footprint including the
        # per-shard v2 files written next to it.
        size += sum(
            (written.parent / f"{written.name}.shard{index}").stat().st_size
            for index in range(corpus.shard_count)
        )
        layout = f"{corpus.shard_count}-shard manifest, {layout}"
    print(
        f"snapshot of corpus {corpus.name!r} ({len(corpus.store)} documents, "
        f"{size} bytes, {layout}) written to {written}",
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "search": _command_search,
        "compare": _command_compare,
        "serve": _command_serve,
        "figure4": _command_figure4,
        "save-snapshot": _command_save_snapshot,
        "lint": run_lint,
    }
    try:
        return handlers[arguments.command](arguments, out)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
