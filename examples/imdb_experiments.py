"""Figure 4 reproduction: effectiveness and efficiency of XSACT on IMDB queries.

Run with::

    python examples/imdb_experiments.py

Generates the synthetic IMDB corpus, runs the eight queries QM1-QM8, and prints
the two panels of Figure 4 (DoD per query and construction time per query for
the single-swap and multi-swap algorithms), followed by the ablation sweeps
documented in DESIGN.md (size limit, number of results, threshold, optimality
gap, algorithm field).
"""

from __future__ import annotations

from repro.core.config import DFSConfig
from repro.experiments.ablations import (
    run_algorithm_field,
    run_num_results_ablation,
    run_optimality_gap,
    run_size_limit_ablation,
    run_threshold_ablation,
)
from repro.experiments.figure4 import run_figure4
from repro.experiments.report import format_measurements
from repro.workloads.queries import imdb_workload
from repro.workloads.runner import WorkloadRunner


def main() -> None:
    print("Generating the synthetic IMDB corpus and running QM1-QM8 ...\n")
    runner = WorkloadRunner(imdb_workload(), config=DFSConfig(size_limit=5))

    rows = run_figure4(runner=runner)
    print(format_measurements(rows, title="Figure 4(a)+(b): DoD and construction time per query"))

    print()
    print(format_measurements(run_size_limit_ablation(runner=runner), title="A1: DoD vs size limit L"))
    print()
    print(
        format_measurements(
            run_num_results_ablation(runner=runner), title="A2: DoD vs number of results n"
        )
    )
    print()
    print(
        format_measurements(
            run_threshold_ablation(runner=runner), title="A3: DoD vs differentiability threshold x"
        )
    )
    print()
    print(format_measurements(run_optimality_gap(), title="A4: optimality gap on micro-instances"))
    print()
    print(format_measurements(run_algorithm_field(runner=runner), title="A5: algorithm field on QM2"))


if __name__ == "__main__":
    main()
