"""Outdoor Retailer scenario: comparing brands for the "men, jackets" query.

Run with::

    python examples/outdoor_brands.py

Reproduces the demo walk-through of Section 3: a user searching for men's
jackets compares brands rather than individual products, and the comparison
table reveals each brand's focus (one brand mostly sells rain jackets, another
insulated ski jackets) without the user having to browse hundreds of items.
"""

from __future__ import annotations

from collections import Counter

from repro import DFSConfig, SearchEngine, generate_outdoor_corpus
from repro.comparison.pipeline import Xsact


def main() -> None:
    corpus = generate_outdoor_corpus()
    engine = SearchEngine(corpus)

    # Which brands have matching men's jackets at all?
    result_set = engine.search("men jackets")
    brands_with_matches = Counter(result.doc_id for result in result_set)
    print(f'Query "men jackets" matched items from {len(brands_with_matches)} brand document(s):')
    for doc_id, matches in brands_with_matches.most_common():
        brand_name = corpus.store.get(doc_id).root.find_child("brand_name").direct_text()
        print(f"  {brand_name:12s} ({doc_id}) — {matches} matching item group(s)")

    # Compare the three brands with the most matches, as whole documents.
    selected = [doc_id for doc_id, _count in brands_with_matches.most_common(3)]
    if len(selected) < 2:
        selected = corpus.store.document_ids()[:3]

    xsact = Xsact(corpus, config=DFSConfig(size_limit=6))
    outcome = xsact.compare_documents(selected, query="men jackets", size_limit=6)
    print(f"\nBrand comparison table (DoD = {outcome.dod}):\n")
    print(outcome.to_text())

    print(
        "\nReading the table: the dominant item.subcategory / item.category values per column"
        "\nexpose each brand's focus, which is exactly the guidance the demo scenario promises."
    )


if __name__ == "__main__":
    main()
