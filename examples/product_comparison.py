"""Product Reviews scenario: XSACT's DFSs vs frequency snippets (Figures 1 & 2).

Run with::

    python examples/product_comparison.py

For each product query the script prints

* the DoD achieved by eXtract-style per-result snippets (the baseline the
  paper argues is "generally not comparable"), and
* the DoD achieved by XSACT's single-swap and multi-swap DFSs,

then shows the full comparison table for the paper's running query
``{TomTom, GPS}``, including the HTML rendering written next to this script.
"""

from __future__ import annotations

from pathlib import Path

from repro import DFSConfig, DFSGenerator, FeatureExtractor, SearchEngine, generate_product_reviews_corpus
from repro.comparison.pipeline import Xsact
from repro.experiments.report import format_rows
from repro.snippets import snippet_dod
from repro.workloads.queries import PRODUCT_QUERIES


def main() -> None:
    corpus = generate_product_reviews_corpus()
    config = DFSConfig(size_limit=6)
    engine = SearchEngine(corpus)
    extractor = FeatureExtractor(statistics=corpus.statistics)
    generator = DFSGenerator(config)

    rows = []
    for spec in PRODUCT_QUERIES:
        results = engine.search(spec.query(), limit=spec.max_results)
        features = [extractor.extract(result) for result in results]
        if len(features) < 2:
            continue
        rows.append(
            {
                "query": spec.name,
                "text": spec.text,
                "results": len(features),
                "dod_snippets": snippet_dod(features, query=spec.query(), config=config),
                "dod_single_swap": generator.generate(features, algorithm="single_swap").dod,
                "dod_multi_swap": generator.generate(features, algorithm="multi_swap").dod,
            }
        )
    print(format_rows(rows, title="Snippets vs XSACT on the Product Reviews corpus (L=6)"))

    # The Figure 2 walk-through for the paper's running query.
    xsact = Xsact(corpus, config=config)
    outcome = xsact.search_and_compare("tomtom gps", top=2, size_limit=6)
    print(f"\nComparison table for {{TomTom, GPS}} (DoD = {outcome.dod}):\n")
    print(outcome.to_text())

    html_path = Path(__file__).with_name("product_comparison.html")
    html_path.write_text(outcome.to_html(), encoding="utf-8")
    print(f"\nHTML comparison table written to {html_path}")


if __name__ == "__main__":
    main()
