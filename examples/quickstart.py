"""Quickstart: search a structured corpus and compare two results with XSACT.

Run with::

    python examples/quickstart.py

The script generates the synthetic Product Reviews corpus (the stand-in for the
paper's buzzillions.com dataset), issues the paper's running query
``{TomTom, GPS}``, and prints the list of results followed by the comparison
table of the top two — the programmatic equivalent of the demo's web UI flow.
"""

from __future__ import annotations

from repro import DFSConfig, Xsact, generate_product_reviews_corpus


def main() -> None:
    corpus = generate_product_reviews_corpus()
    print(f"Corpus: {corpus.name} — {corpus.describe()}")

    xsact = Xsact(corpus, config=DFSConfig(size_limit=6))

    # Step 1: keyword search (the "Search Engine" box of the architecture).
    result_set = xsact.search("tomtom gps")
    print(f'\nResults for query "{result_set.query}":')
    for result in result_set:
        print(f"  [{result.result_id}] {result.title}  (score {result.score:.3f})")

    if len(result_set) < 2:
        print("Need at least two results to compare; try a broader query such as 'gps'.")
        return

    # Steps 2-5: select results, extract features, generate DFSs, build the table.
    outcome = xsact.compare(result_set, result_ids=["R1", "R2"], size_limit=6)
    print(f"\nComparison table (DoD = {outcome.dod}, algorithm = {outcome.generation.algorithm}):\n")
    print(outcome.to_text())


if __name__ == "__main__":
    main()
