"""Cold-start and memory probe: eager v1 vs eager v2 vs lazy v2 snapshots.

Run with ``PYTHONPATH=src python benchmarks/memory_probe.py``; not collected
by pytest (no ``test_`` prefix).  Fills the cold-start/RSS table in
``docs/benchmarks.md``.

The parent process generates one IMDB corpus, saves it in every snapshot
layout, then measures each load scenario in a **fresh subprocess**: peak RSS
(``resource.getrusage(RUSAGE_SELF).ru_maxrss``) is monotonic per process, so
eager and lazy loads can only be compared across process boundaries.  Each
child reports, as JSON on stdout:

* ``load_ms`` — ``Corpus.load`` wall time (the head-only read for lazy v2),
* ``first_query_ms`` — one cold ``SearchEngine.search("drama war")``,
* ``peak_rss_kb`` — process peak resident set after load + first query,
* ``store`` — the store's ``stats()`` (backend and, for lazy, the
  decode/eviction/materialisation counters).

The tentpole acceptance criterion reads straight off the table: the lazy v2
``load_ms + first_query_ms`` must be at most half of the v1 eager
``load_ms``.
"""

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
QUERY = "drama war"


def child(snapshot: str, eager: bool, max_materialised) -> None:
    """Load one snapshot, run one query, report the process's own costs."""
    from repro.search.engine import SearchEngine
    from repro.storage.corpus import Corpus

    start = time.perf_counter()
    corpus = Corpus.load(
        snapshot,
        eager=eager or None,  # None lets the format pick its default
        max_materialised=max_materialised,
    )
    load_ms = (time.perf_counter() - start) * 1000

    start = time.perf_counter()
    results = SearchEngine(corpus, cache_size=0).search(QUERY)
    first_query_ms = (time.perf_counter() - start) * 1000

    print(
        json.dumps(
            {
                "load_ms": round(load_ms, 2),
                "first_query_ms": round(first_query_ms, 2),
                "results": len(results),
                "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                "store": corpus.store.stats(),
            }
        )
    )


def run_scenario(label: str, snapshot: Path, *, eager: bool = False, max_materialised=None):
    command = [
        sys.executable,
        __file__,
        "--child",
        str(snapshot),
    ]
    if eager:
        command.append("--eager")
    if max_materialised is not None:
        command.extend(["--max-materialised", str(max_materialised)])
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        command, capture_output=True, text=True, env=env, check=True
    )
    report = json.loads(completed.stdout)
    return label, report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--movies", type=int, default=1000, help="IMDB corpus size")
    parser.add_argument("--child", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--eager", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--max-materialised", type=int, default=None, help=argparse.SUPPRESS)
    arguments = parser.parse_args()

    if arguments.child:
        child(arguments.child, arguments.eager, arguments.max_materialised)
        return

    from repro.datasets.imdb import ImdbConfig, generate_imdb_corpus

    print(f"generating IMDB corpus ({arguments.movies} movies)...")
    corpus = generate_imdb_corpus(ImdbConfig(num_movies=arguments.movies))

    with tempfile.TemporaryDirectory() as scratch:
        v1 = Path(scratch) / "imdb_v1.snap"
        v2 = Path(scratch) / "imdb_v2.snap"
        v2z = Path(scratch) / "imdb_v2z.snap"
        corpus.save(v1, format=1)
        corpus.save(v2, format=2)
        corpus.save(v2z, format=2, compress=True)
        for path in (v1, v2, v2z):
            print(f"  {path.name}: {path.stat().st_size / 1e6:.2f} MB")

        rows = [
            run_scenario("v1 eager", v1, eager=True),
            run_scenario("v2 eager", v2, eager=True),
            run_scenario("v2 lazy (default LRU)", v2),
            run_scenario("v2 lazy (LRU=32)", v2, max_materialised=32),
            run_scenario("v2 lazy compressed", v2z),
        ]

    header = f"{'scenario':<22} {'load ms':>9} {'query ms':>9} {'ready ms':>9} {'peak RSS MB':>12}  store"
    print()
    print(header)
    print("-" * len(header))
    for label, report in rows:
        store = report["store"]
        if store["backend"] == "lazy":
            detail = (
                f"lazy: {store['decodes']} decode(s), "
                f"{store['materialised']} materialised, {store['evictions']} evicted"
            )
        else:
            detail = "eager"
        ready = report["load_ms"] + report["first_query_ms"]
        print(
            f"{label:<22} {report['load_ms']:>9.1f} {report['first_query_ms']:>9.1f} "
            f"{ready:>9.1f} {report['peak_rss_kb'] / 1024:>12.1f}  {detail}"
        )

    eager_load = dict(rows)["v1 eager"]["load_ms"]
    lazy = dict(rows)["v2 lazy (default LRU)"]
    ready = lazy["load_ms"] + lazy["first_query_ms"]
    verdict = "PASS" if ready <= eager_load * 0.5 else "FAIL"
    print()
    print(
        f"first-query-ready (v2 lazy) {ready:.1f} ms vs v1 eager load {eager_load:.1f} ms "
        f"-> {ready / eager_load * 100:.0f}% ({verdict}: target <= 50%)"
    )


if __name__ == "__main__":
    main()
