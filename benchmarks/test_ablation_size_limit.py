"""A1 — DoD and construction time as a function of the DFS size limit L.

The demo lets the user pick the comparison-table size bound; this ablation
sweeps L over {2, 4, 6, 8, 10} on one IMDB query.  Expected shape: DoD grows
monotonically with L for both algorithms (a larger budget can only help) and
construction time grows mildly.
"""

from repro.experiments.ablations import run_size_limit_ablation
from repro.experiments.report import format_measurements


def test_dod_vs_size_limit(benchmark, imdb_runner, report):
    rows = benchmark.pedantic(
        run_size_limit_ablation,
        kwargs={"size_limits": (2, 4, 6, 8, 10), "runner": imdb_runner},
        rounds=1,
        iterations=1,
    )

    report("Ablation A1: DoD vs size limit L (query QM1)", format_measurements(rows))

    by_algorithm = {}
    for row in rows:
        by_algorithm.setdefault(row.algorithm, []).append(row.dod)
    for algorithm, dods in by_algorithm.items():
        assert dods == sorted(dods), f"{algorithm} DoD should not decrease with L"
