"""E4 — snippet baseline vs XSACT DFSs (Section 2's motivating comparison).

The paper motivates XSACT by observing that per-result snippets (eXtract-style,
frequency- and query-biased) have a low degree of differentiation: in the
Figure 1 example the snippet DoD is 2 while XSACT reaches 5.  This benchmark
measures that comparison on the synthetic Product Reviews corpus for all four
product queries.  Expected shape: XSACT's multi-swap DoD is at least the
snippet DoD on every query and strictly larger in aggregate.
"""

from repro.core.config import DFSConfig
from repro.core.generator import DFSGenerator
from repro.experiments.report import format_rows
from repro.features.extractor import FeatureExtractor
from repro.search.engine import SearchEngine
from repro.snippets import snippet_dod
from repro.workloads.queries import PRODUCT_QUERIES


def test_snippet_dod_vs_xsact_dod(benchmark, product_corpus, report):
    config = DFSConfig(size_limit=5)
    engine = SearchEngine(product_corpus)
    extractor = FeatureExtractor(statistics=product_corpus.statistics)
    generator = DFSGenerator(config)

    def run_comparison():
        rows = []
        for spec in PRODUCT_QUERIES:
            results = engine.search(spec.query(), limit=spec.max_results)
            features = [extractor.extract(result) for result in results]
            if len(features) < 2:
                continue
            baseline = snippet_dod(features, query=spec.query(), config=config)
            xsact = generator.generate(features, algorithm="multi_swap").dod
            rows.append(
                {
                    "query": spec.name,
                    "results": len(features),
                    "dod_snippets": baseline,
                    "dod_xsact": xsact,
                }
            )
        return rows

    rows = benchmark.pedantic(run_comparison, rounds=3, iterations=1)

    report("Snippet baseline vs XSACT DFSs (Product Reviews, L=5)", format_rows(rows))

    assert rows, "no product query returned at least two results"
    assert all(row["dod_xsact"] >= row["dod_snippets"] for row in rows)
    assert sum(row["dod_xsact"] for row in rows) > sum(row["dod_snippets"] for row in rows)
