"""A3 — sensitivity of the DoD to the differentiability threshold x.

The paper fixes x = 10% ("empirically set"); this ablation sweeps
x ∈ {5, 10, 20, 50} on one IMDB query to show how the choice shifts the
objective.  Expected shape: the achievable DoD is non-increasing as the
threshold gets stricter, because fewer occurrence differences qualify as
differentiating.
"""

from repro.experiments.ablations import run_threshold_ablation
from repro.experiments.report import format_measurements


def test_dod_vs_threshold(benchmark, imdb_runner, report):
    rows = benchmark.pedantic(
        run_threshold_ablation,
        kwargs={"thresholds": (5.0, 10.0, 20.0, 50.0), "runner": imdb_runner},
        rounds=1,
        iterations=1,
    )

    report("Ablation A3: DoD vs differentiability threshold x (query QM1)", format_measurements(rows))

    for algorithm in ("single_swap", "multi_swap"):
        dods = [row.dod for row in rows if row.algorithm == algorithm]
        # The optimum is monotone in the threshold; the heuristics track it up
        # to local-optimum noise, so compare the loosest and strictest points.
        assert dods[-1] <= dods[0], (
            f"{algorithm}: DoD at x=50% should not exceed DoD at x=5%"
        )
