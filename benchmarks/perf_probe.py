"""Ad-hoc timing probe used to fill the ROADMAP performance table.

Run with ``PYTHONPATH=src python benchmarks/perf_probe.py``; not collected by
pytest (no ``test_`` prefix).  Times index build and cold query latency on the
same IMDB corpora as ``test_search_hot_path.py`` so before/after rows are
comparable across PRs.
"""

import tempfile
import time
from pathlib import Path

from repro.datasets.imdb import ImdbConfig, generate_imdb_corpus
from repro.search.engine import SearchEngine
from repro.storage.corpus import Corpus
from repro.storage.inverted_index import InvertedIndex


def best_of(call, rounds=5):
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        call()
        timings.append(time.perf_counter() - start)
    return min(timings) * 1000


def main() -> None:
    corpus_200 = generate_imdb_corpus(ImdbConfig(num_movies=200))
    corpus_1000 = generate_imdb_corpus(ImdbConfig(num_movies=1000))

    print(f"build 200:  {best_of(lambda: InvertedIndex.build(corpus_200.store), 3):.1f} ms")
    print(f"build 1000: {best_of(lambda: InvertedIndex.build(corpus_1000.store), 3):.1f} ms")

    def cold(corpus, semantics):
        engine = SearchEngine(corpus, semantics=semantics, cache_size=0)
        return engine.search("drama war")

    print(f"cold slca 200: {best_of(lambda: cold(corpus_200, 'slca')):.1f} ms")
    print(f"cold elca 200: {best_of(lambda: cold(corpus_200, 'elca')):.1f} ms")

    # Incremental removal vs full rebuild, 1000 movies: remove one document
    # and answer a query on the shrunk corpus.
    # Resolve the victim once: remove + re-add moves it to the end of the
    # store's insertion order, so indexing per call would time a different
    # document each round.
    victim = corpus_1000.store.document_ids()[500]
    root = corpus_1000.store.get(victim).root

    def remove_then_query(incremental):
        start = time.perf_counter()
        if incremental:
            corpus_1000.remove_document(victim)
        else:
            corpus_1000.store.remove(victim)
            corpus_1000.refresh()
        SearchEngine(corpus_1000, cache_size=0).search("drama war")
        elapsed = (time.perf_counter() - start) * 1000
        corpus_1000.add_document(victim, root)
        return elapsed

    print(f"remove+query 1000, incremental: {min(remove_then_query(True) for _ in range(3)):.1f} ms")
    print(f"remove+query 1000, full rebuild: {min(remove_then_query(False) for _ in range(3)):.1f} ms")

    # Cold start: binary snapshot load vs rebuilding the corpus from scratch.
    # "from XML dir" is the real disk cold start (parse + tokenise + index);
    # "rebuild in memory" re-derives index + statistics from already-parsed
    # trees, isolating the tokenisation cost the snapshot skips.
    with tempfile.TemporaryDirectory() as scratch:
        for label, corpus in (("200", corpus_200), ("1000", corpus_1000)):
            snapshot_path = Path(scratch) / f"imdb_{label}.snap"
            xml_dir = Path(scratch) / f"imdb_{label}_xml"
            corpus.save(snapshot_path)
            corpus.store.save_to_directory(xml_dir)
            size_mb = snapshot_path.stat().st_size / 1e6
            print(f"snapshot save {label}: {best_of(lambda: corpus.save(snapshot_path), 3):.1f} ms ({size_mb:.2f} MB)")
            print(f"cold start {label}, snapshot load:     {best_of(lambda: Corpus.load(snapshot_path), 3):.1f} ms")
            print(f"cold start {label}, rebuild in memory: {best_of(lambda: Corpus(corpus.store), 3):.1f} ms")
            print(f"cold start {label}, from XML dir:      {best_of(lambda: Corpus.from_directory(xml_dir), 3):.1f} ms")


if __name__ == "__main__":
    main()
