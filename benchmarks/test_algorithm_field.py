"""A5 — the whole algorithm field at equal budget on one IMDB query.

Compares random, top-significance (snippet-like), greedy, single-swap and
multi-swap on the same results with the same size bound.  Expected shape:
random < top-significance ≲ greedy < single-swap ≤ multi-swap.
"""

from repro.experiments.ablations import run_algorithm_field
from repro.experiments.report import format_measurements


def test_algorithm_field(benchmark, imdb_runner, report):
    rows = benchmark.pedantic(
        run_algorithm_field,
        kwargs={"query_name": "QM2", "runner": imdb_runner},
        rounds=1,
        iterations=1,
    )

    report("Ablation A5: algorithm field on query QM2 (L=5)", format_measurements(rows))

    dods = {row.algorithm: row.dod for row in rows}
    assert dods["multi_swap"] >= dods["top_significance"]
    assert dods["single_swap"] >= dods["top_significance"]
    assert dods["multi_swap"] >= dods["random"]
    assert dods["greedy"] >= dods["random"]
