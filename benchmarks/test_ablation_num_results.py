"""A2 — DoD and construction time as a function of the number of compared results n.

Sweeps the number of results selected for comparison (n ∈ {2, 5, 10, 20},
truncated to what the query returns) on one IMDB query.  Expected shape: DoD
grows super-linearly with n (it sums over result pairs) and construction time
grows with n as well, staying well under a second.
"""

from repro.experiments.ablations import run_num_results_ablation
from repro.experiments.report import format_measurements
from repro.workloads.queries import QuerySpec


def test_dod_vs_num_results(benchmark, imdb_runner, report):
    # Use an uncapped version of QM3 so larger n values are actually reachable.
    uncapped = QuerySpec("QM3_uncapped", "drama war", max_results=None)
    imdb_runner.workload.queries.append(uncapped)
    try:
        rows = benchmark.pedantic(
            run_num_results_ablation,
            kwargs={
                "result_counts": (2, 5, 10, 20),
                "query_name": "QM3_uncapped",
                "runner": imdb_runner,
            },
            rounds=1,
            iterations=1,
        )
    finally:
        imdb_runner.workload.queries.remove(uncapped)

    report("Ablation A2: DoD vs number of compared results n (query QM3)", format_measurements(rows))

    multi = [row.dod for row in rows if row.algorithm == "multi_swap"]
    assert multi == sorted(multi), "DoD should grow with the number of results"
    assert all(row.seconds < 2.0 for row in rows)
