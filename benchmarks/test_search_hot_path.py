"""Hot-path benchmarks: bulk index build, cold vs. cached query latency.

The query engine's hot path is (1) building the inverted index, (2) answering
SLCA/ELCA keyword queries, (3) answering the *same* queries again — the
dominant pattern under real traffic, served by the engine's LRU result cache.
These benchmarks pin all three on the substrate-performance corpus so that
regressions in the bulk build, the stack-merge match algorithms or the cache
show up separately, and they register a cold-vs-cached comparison table with
the shared :func:`report` fixture.  Two storage-core cases ride along: a
build into a shared (pre-populated) term dictionary, as a corpus rebuild
would do, and incremental document removal followed by a cold query —
the case a full index rebuild used to dominate.
"""

import time

import pytest

from repro.search.engine import SearchEngine
from repro.storage.inverted_index import InvertedIndex
from repro.storage.term_dictionary import TermDictionary

HOT_QUERIES = ("drama war", "action revenge", "comedy family")


def test_bulk_index_build(benchmark, imdb_corpus):
    """Append-then-finalize build over the full IMDB store (fresh dictionary)."""
    index = benchmark.pedantic(
        InvertedIndex.build, args=(imdb_corpus.store,), rounds=3, iterations=1
    )
    assert index.documents_indexed == len(imdb_corpus.store)


def test_bulk_index_build_with_interned_dictionary(benchmark, imdb_corpus):
    """Build into an already-populated shared dictionary (warm interning).

    This is the rebuild path of a long-lived corpus: every token already has
    an id, so interning is pure dictionary probes with no insertions.
    """
    dictionary = TermDictionary()
    InvertedIndex.build(imdb_corpus.store, dictionary=dictionary)  # pre-populate

    index = benchmark.pedantic(
        InvertedIndex.build,
        args=(imdb_corpus.store,),
        kwargs={"dictionary": dictionary},
        rounds=3,
        iterations=1,
    )
    assert index.documents_indexed == len(imdb_corpus.store)


def test_remove_document_then_cold_query(benchmark, imdb_corpus):
    """Incremental removal of one document plus a cold query on the remainder.

    Pre-interned-ids, this required a full index + statistics rebuild; now it
    touches only the removed document's posting runs.  The removed document is
    re-added after each round, so the session-scoped corpus is unchanged.
    """
    victim = imdb_corpus.store.document_ids()[len(imdb_corpus.store) // 2]
    root = imdb_corpus.store.get(victim).root
    # Each round starts from "victim present": the per-round setup re-adds
    # what the previous round removed, so remove once up front to prime it.
    imdb_corpus.remove_document(victim)

    def remove_and_query():
        imdb_corpus.remove_document(victim)
        return SearchEngine(imdb_corpus, cache_size=0).search("drama war")

    def restore():
        imdb_corpus.add_document(victim, root)
        return (), {}

    result_set = benchmark.pedantic(remove_and_query, setup=restore, rounds=3, iterations=1)
    imdb_corpus.add_document(victim, root)  # leave the session corpus intact
    assert len(result_set) >= 1
    assert victim in imdb_corpus.store


@pytest.mark.parametrize("query", HOT_QUERIES)
def test_cold_slca_query(benchmark, imdb_corpus, query):
    """Full pipeline latency with the result cache disabled."""
    engine = SearchEngine(imdb_corpus, cache_size=0)
    result_set = benchmark(engine.search, query)
    assert len(result_set) >= 1


def test_cold_elca_query(benchmark, imdb_corpus):
    """Stack-merge ELCA latency with the result cache disabled."""
    engine = SearchEngine(imdb_corpus, semantics="elca", cache_size=0)
    result_set = benchmark(engine.search, "drama war")
    assert len(result_set) >= 1


def test_cached_query(benchmark, imdb_engine):
    """Repeat-query latency: LRU hit plus fresh subtree copies."""
    imdb_engine.search("drama war")
    result_set = benchmark(imdb_engine.search, "drama war")
    assert len(result_set) >= 1
    assert imdb_engine.cache_hits >= 1


def test_cold_vs_cached_report(imdb_corpus, report):
    """Register a cold-vs-cached latency table and sanity-check the speedup."""
    def best_of(call, rounds=5):
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            call()
            timings.append(time.perf_counter() - start)
        return min(timings) * 1000

    rows = []
    for query in HOT_QUERIES:
        cold_engine = SearchEngine(imdb_corpus, cache_size=0)
        cold_ms = best_of(lambda: cold_engine.search(query))

        warm_engine = SearchEngine(imdb_corpus)
        warm_engine.search(query)
        cached_ms = best_of(lambda: warm_engine.search(query))
        rows.append((query, cold_ms, cached_ms))

    lines = [f"{'query':<20} {'cold ms':>10} {'cached ms':>10} {'speedup':>8}"]
    for query, cold_ms, cached_ms in rows:
        speedup = cold_ms / cached_ms if cached_ms else float("inf")
        lines.append(f"{query:<20} {cold_ms:>10.2f} {cached_ms:>10.2f} {speedup:>7.1f}x")
    report("Search hot path: cold vs cached query latency", "\n".join(lines))

    # The cached path skips posting lookup, matching, inference and ranking;
    # in practice it is ~2.5x faster by best-of-5 minimum, so asserting on the
    # minima both guards the speedup and stays stable against scheduler and GC
    # noise (a single clean sample per side suffices).
    for _, cold_ms, cached_ms in rows:
        assert cached_ms <= cold_ms
