"""E3 — Figures 1 & 2: the {TomTom, GPS} comparison-table walk-through.

Runs the full XSACT pipeline (search → entity identification → feature
extraction → multi-swap DFS generation → comparison table) on the Product
Reviews corpus for the paper's running query and reports the generated table,
the analogue of Figure 2.  Expected shape: the two compared GPS products share
several feature types in their DFSs and the majority of table rows are
differentiating.
"""

from repro.comparison.pipeline import Xsact
from repro.core.config import DFSConfig


def test_figure2_comparison_table(benchmark, product_corpus, report):
    xsact = Xsact(product_corpus, config=DFSConfig(size_limit=6))

    def build_table():
        return xsact.search_and_compare("tomtom gps", top=2, size_limit=6)

    outcome = benchmark.pedantic(build_table, rounds=3, iterations=1)

    report(
        "Figure 2: comparison table for query {TomTom, GPS} (multi-swap, L=6)",
        outcome.to_text(),
    )

    assert len(outcome.results) == 2
    assert outcome.dod >= 2
    assert len(outcome.table.differentiating_rows()) >= 2
    assert all(len(dfs) <= 6 for dfs in outcome.generation.dfs_set)
