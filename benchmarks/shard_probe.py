"""Ad-hoc sharding probe used to fill the ROADMAP sharding table.

Run with ``PYTHONPATH=src python benchmarks/shard_probe.py``; not collected by
pytest (no ``test_`` prefix).  Measures, on the same 1000-movie IMDB corpus as
``perf_probe.py``:

* sharded build time — serial vs thread pool vs process pool, at 2/4 shards,
  against the monolithic :class:`Corpus` build baseline.  The pools only help
  on multi-core machines (document batches are CPU-bound tokenise+index work);
  the probe prints ``os.cpu_count()`` so single-core CI numbers are read in
  context.
* query fan-out latency — cold SLCA/ELCA queries through
  :class:`ShardedSearchEngine` (parallel and serial fan-out) vs a single
  :class:`SearchEngine`, plus the paginated first-page path.
"""

import os
import time

from repro.datasets.imdb import ImdbConfig, generate_imdb_corpus
from repro.search.engine import SearchEngine
from repro.search.sharded_engine import ShardedSearchEngine
from repro.storage.corpus import Corpus
from repro.storage.sharded import ShardedCorpus, process_pool_available

QUERIES = ("drama war", "comedy actor", "thriller director actress")


def best_of(call, rounds=5):
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        call()
        timings.append(time.perf_counter() - start)
    return min(timings) * 1000


def main() -> None:
    print(f"cpu_count: {os.cpu_count()}")
    print(f"process pool available: {process_pool_available()}")

    source = generate_imdb_corpus(ImdbConfig(num_movies=1000))
    documents = [
        (document.doc_id, document.root, dict(document.metadata))
        for document in source.store
    ]

    print(f"monolithic build 1000: {best_of(lambda: Corpus(source.store), 3):.1f} ms")
    for shard_count in (2, 4):
        for mode in ("serial", "thread", "process"):
            if mode == "process" and not process_pool_available():
                print(f"sharded build 1000, {shard_count} shards, {mode}: skipped (no pool)")
                continue
            built = {}

            def build():
                built["corpus"] = ShardedCorpus.build(
                    documents, shard_count, parallel=mode, pool_timeout=120
                )

            elapsed = best_of(build, 3)
            backend = built["corpus"].build_backend
            print(
                f"sharded build 1000, {shard_count} shards, {mode}: "
                f"{elapsed:.1f} ms (backend used: {backend})"
            )

    single_engine_factory = lambda semantics: SearchEngine(
        source, semantics=semantics, cache_size=0
    )
    sharded_corpus = ShardedCorpus.build(documents, 4)

    for semantics in ("slca", "elca"):
        for query in QUERIES:
            single = best_of(lambda: single_engine_factory(semantics).search(query))
            fanout = ShardedSearchEngine(
                sharded_corpus, semantics=semantics, cache_size=0, parallel=True
            )
            serial = ShardedSearchEngine(
                sharded_corpus, semantics=semantics, cache_size=0, parallel=False
            )
            try:
                parallel_ms = best_of(lambda: fanout.search(query))
                serial_ms = best_of(lambda: serial.search(query))
            finally:
                fanout.close()
                serial.close()
            print(
                f"cold {semantics} {query!r}: single {single:.1f} ms | "
                f"4-shard fan-out {parallel_ms:.1f} ms | 4-shard serial {serial_ms:.1f} ms"
            )

    # First-page pagination through the fan-out (the serve hot path).
    engine = ShardedSearchEngine(sharded_corpus, cache_size=0)
    reference = SearchEngine(source, cache_size=0)
    try:
        print(
            f"page(0, 10) 'drama war': single "
            f"{best_of(lambda: reference.search_page('drama war', 0, 10)):.1f} ms | "
            f"4-shard {best_of(lambda: engine.search_page('drama war', 0, 10)):.1f} ms"
        )
    finally:
        engine.close()


if __name__ == "__main__":
    main()
