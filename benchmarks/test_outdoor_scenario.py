"""E5 — Outdoor Retailer brand-focus scenario (Section 3's "men, jackets" demo).

Compares three brands of the Outdoor Retailer corpus as whole documents, the
way the demo walk-through does, and reports the resulting comparison table.
Expected shape: the table surfaces item-level attributes (subcategory, gender,
material, ...) whose dominant values differ across brands — the "Marmot sells
rain jackets, Columbia insulated ski jackets" effect.
"""

from repro.comparison.pipeline import Xsact
from repro.core.config import DFSConfig


def test_outdoor_brand_comparison(benchmark, outdoor_corpus, report):
    xsact = Xsact(outdoor_corpus, config=DFSConfig(size_limit=6))
    brand_ids = outdoor_corpus.store.document_ids()[:3]

    def compare_brands():
        return xsact.compare_documents(brand_ids, query="men jackets", size_limit=6)

    outcome = benchmark.pedantic(compare_brands, rounds=3, iterations=1)

    report(
        "Outdoor Retailer: brand comparison for the 'men, jackets' scenario (L=6)",
        outcome.to_text(),
    )

    assert len(outcome.results) == 3
    assert outcome.dod > 0
    labels = {row.label() for row in outcome.table.rows}
    assert any(label.startswith("item") for label in labels)
