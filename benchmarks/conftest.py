"""Shared fixtures and reporting for the benchmark harness.

Every benchmark regenerates one experiment of DESIGN.md's index (a paper figure
or an ablation) and registers a plain-text table with the :func:`report`
fixture; all registered tables are printed at the end of the pytest session so
that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
both the timing statistics and the paper-style result tables.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.core.config import DFSConfig
from repro.datasets.imdb import generate_imdb_corpus
from repro.datasets.outdoor_retailer import generate_outdoor_corpus
from repro.datasets.product_reviews import generate_product_reviews_corpus
from repro.search.engine import SearchEngine
from repro.workloads.queries import imdb_workload
from repro.workloads.runner import WorkloadRunner

_REPORTS: List[str] = []


@pytest.fixture(scope="session")
def report():
    """Register a paper-style result table for the end-of-session summary."""

    def _register(title: str, text: str) -> None:
        _REPORTS.append(f"\n===== {title} =====\n{text}")

    return _register


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("================ XSACT experiment reports ================")
    for block in _REPORTS:
        for line in block.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("===========================================================")


@pytest.fixture(scope="session")
def imdb_corpus():
    """The full-size IMDB corpus used by the Figure 4 experiments (seed 42)."""
    return generate_imdb_corpus()


@pytest.fixture(scope="session")
def product_corpus():
    """The full-size Product Reviews corpus (seed 42)."""
    return generate_product_reviews_corpus()


@pytest.fixture(scope="session")
def outdoor_corpus():
    """The full-size Outdoor Retailer corpus (seed 7)."""
    return generate_outdoor_corpus()


@pytest.fixture(scope="session")
def imdb_engine(imdb_corpus):
    """A shared SLCA engine over the IMDB corpus (default query cache on)."""
    return SearchEngine(imdb_corpus)


@pytest.fixture(scope="session")
def imdb_runner(imdb_corpus):
    """Workload runner for QM1-QM8 with the paper's default configuration."""
    workload = imdb_workload(corpus_factory=lambda: imdb_corpus)
    return WorkloadRunner(workload, config=DFSConfig(size_limit=5), corpus=imdb_corpus)
