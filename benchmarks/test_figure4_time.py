"""E2 — Figure 4(b): processing time of single-swap vs multi-swap over QM1-QM8.

Regenerates the efficiency panel of Figure 4: the DFS construction time of the
two algorithms on every query.  Expected shape: both algorithms run in a small
fraction of a second per query; which one is faster varies by query (the paper
notes single-swap is usually faster but multi-swap can stop sooner because it
changes many features per step — on this substrate the balance often tips
towards multi-swap, which is recorded in EXPERIMENTS.md).
"""

import pytest

from repro.experiments.report import format_rows


@pytest.mark.parametrize("algorithm", ["single_swap", "multi_swap"])
def test_figure4b_construction_time(benchmark, imdb_runner, report, algorithm):
    specs = imdb_runner.workload.queries
    # Warm the search/extraction cache so only DFS construction is measured.
    for spec in specs:
        imdb_runner.result_features(spec)

    def run_all_queries():
        return [imdb_runner.run_query(spec, algorithm) for spec in specs]

    measurements = benchmark.pedantic(run_all_queries, rounds=3, iterations=1)

    report(
        f"Figure 4(b): construction time per query ({algorithm})",
        format_rows(
            [
                {
                    "query": measurement.query_name,
                    "results": measurement.num_results,
                    "time_s": round(measurement.construction_seconds, 6),
                    "dod": measurement.dod,
                }
                for measurement in measurements
            ]
        ),
    )

    assert all(measurement.construction_seconds < 2.0 for measurement in measurements)
