"""Ad-hoc structural-index probe backing docs/structure.md.

Run with ``PYTHONPATH=src python benchmarks/structure_probe.py``; not
collected by pytest (no ``test_`` prefix).  On the 1000-movie IMDB corpus it
measures the three claims the structural subsystem makes:

* **containment** — the O(1) pre/post interval test vs the O(depth) Dewey
  prefix comparison, over a fixed sample of node pairs;
* **tag-window scans** — ``descendants_with_tag`` (two binary searches into
  a per-tag occurrence list) vs the Dewey prefix walk over the whole label
  table, from document-root anchors;
* **end-to-end** — cold ``slca_struct`` vs cold ``slca`` on pure keyword
  queries (expected: parity within noise — same algorithm, different node
  addressing) plus representative structured queries, and the snapshot
  restore path (structures decoded from the v2 section) vs lazy
  recomputation on first access.
"""

import random
import tempfile
import time
from pathlib import Path

from repro.datasets.imdb import ImdbConfig, generate_imdb_corpus
from repro.search.engine import SearchEngine
from repro.search.structural import StructuredQuery
from repro.storage.corpus import Corpus
from repro.storage.snapshot import save_corpus

QUERIES = ("drama war", "comedy actor", "thriller director actress")
STRUCTURED = (
    ("drama war", ("movie",), "descendant", "actor"),
    ("comedy actor", ("movie",), "descendant", "cast"),
    ("thriller director", ("movie",), "child", "title"),
)
PAIR_SAMPLE = 20_000
ROUNDS = 5


def best_of(call, rounds=ROUNDS):
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        call()
        timings.append(time.perf_counter() - start)
    return min(timings) * 1000


def main() -> None:
    corpus = generate_imdb_corpus(ImdbConfig(num_movies=1000))
    doc_ids = corpus.store.document_ids()

    def rebuild():
        corpus.structure.clear()
        for doc_id in doc_ids:
            corpus.structure.get(doc_id)

    build_ms = best_of(rebuild, 3)
    stats = corpus.structure.stats()
    elements = sum(len(corpus.structure.get(doc_id)) for doc_id in doc_ids)
    print(
        f"index build: {len(doc_ids)} docs, {elements} elements, "
        f"{stats['tags']} tags in {build_ms:.1f} ms"
    )

    # Containment: sample random node pairs inside the largest document.
    largest = max(doc_ids, key=lambda doc_id: len(corpus.structure.get(doc_id)))
    structure = corpus.structure.get(largest)
    labels = structure.labels
    rng = random.Random(11)
    pairs = [
        (rng.randrange(len(labels)), rng.randrange(len(labels))) for _ in range(PAIR_SAMPLE)
    ]
    interval_ms = best_of(lambda: [structure.is_descendant(a, b) for a, b in pairs])
    dewey_ms = best_of(lambda: [labels[a].is_descendant_of(labels[b]) for a, b in pairs])
    print(
        f"containment ({PAIR_SAMPLE} pairs, {len(labels)}-element doc): "
        f"interval {interval_ms:.1f} ms | dewey prefix {dewey_ms:.1f} ms "
        f"({dewey_ms / interval_ms:.1f}x)"
    )

    # Tag-window scan from every document root vs the prefix walk.
    tag_id = corpus.structure.tags.lookup("actor")

    def window_scan():
        total = 0
        for doc_id in doc_ids:
            total += len(corpus.structure.get(doc_id).descendants_with_tag(0, tag_id))
        return total

    def prefix_walk():
        total = 0
        for doc_id in doc_ids:
            doc_structure = corpus.structure.get(doc_id)
            root = doc_structure.labels[0]
            total += sum(
                1
                for pre, label in enumerate(doc_structure.labels)
                if doc_structure.tag_ids[pre] == tag_id and label.is_descendant_of(root)
            )
        return total

    assert window_scan() == prefix_walk()
    window_ms = best_of(window_scan)
    walk_ms = best_of(prefix_walk)
    print(
        f"descendants_with_tag('actor') from {len(doc_ids)} roots: "
        f"window {window_ms:.1f} ms | prefix walk {walk_ms:.1f} ms "
        f"({walk_ms / window_ms:.1f}x)"
    )

    # Cold query differential: same SLCA algorithm, different node addressing.
    for query in QUERIES:
        slca_ms = best_of(
            lambda: SearchEngine(corpus, semantics="slca", cache_size=0).search(query)
        )
        struct_ms = best_of(
            lambda: SearchEngine(corpus, semantics="slca_struct", cache_size=0).search(query)
        )
        print(f"cold {query!r}: slca {slca_ms:.1f} ms | slca_struct {struct_ms:.1f} ms")

    for text, within, axis, axis_tag in STRUCTURED:
        query = StructuredQuery.from_parts(text, within=within, axis=axis, axis_tag=axis_tag)
        engine = SearchEngine(corpus, semantics="slca_struct", cache_size=0)
        count = len(list(engine.search(query)))
        structured_ms = best_of(
            lambda: SearchEngine(corpus, semantics="slca_struct", cache_size=0).search(query)
        )
        print(
            f"structured {text!r} within={'/'.join(within)} {axis}::{axis_tag}: "
            f"{structured_ms:.1f} ms ({count} results)"
        )

    # Snapshot: restored structures vs lazy recomputation on first access.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "probe.snap"
        save_corpus(corpus, path)

        def restored_access():
            loaded = Corpus.load(path)
            assert loaded.structure.stats()["restored"] == len(doc_ids)
            for doc_id in doc_ids:
                loaded.structure.get(doc_id)

        def lazy_access():
            loaded = Corpus.load(path)
            loaded.structure.clear()
            for doc_id in doc_ids:
                loaded.structure.get(doc_id)

        print(
            f"snapshot structures, {len(doc_ids)} docs: "
            f"restored {best_of(restored_access, 3):.1f} ms | "
            f"recomputed {best_of(lazy_access, 3):.1f} ms (both incl. load)"
        )


if __name__ == "__main__":
    main()
