"""E1 — Figure 4(a): DoD of single-swap vs multi-swap over QM1-QM8 (IMDB).

Regenerates the quality panel of Figure 4: for each of the eight movie queries,
the total degree of differentiation achieved by the two XSACT algorithms over
all compared results.  Expected shape: multi-swap matches or exceeds
single-swap overall, and both comfortably beat the frequency-snippet baseline
(see E4).
"""

from repro.experiments.figure4 import run_figure4
from repro.experiments.report import format_measurements


def test_figure4a_dod_by_query(benchmark, imdb_runner, report):
    rows = benchmark.pedantic(run_figure4, kwargs={"runner": imdb_runner}, rounds=1, iterations=1)

    report("Figure 4(a): DoD per query (single-swap vs multi-swap)", format_measurements(rows))

    assert len(rows) == 8
    total_single = sum(row.single_swap_dod for row in rows)
    total_multi = sum(row.multi_swap_dod for row in rows)
    assert total_multi >= total_single * 0.95
    assert all(row.multi_swap_dod > 0 for row in rows)
