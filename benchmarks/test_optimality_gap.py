"""A4 — heuristics vs the exhaustive optimum on small instances.

The DFS construction problem is NP-hard (Theorem 2.1); on micro-instances small
enough to solve exhaustively this benchmark measures how close the heuristics
get.  Expected shape: multi-swap ≥ single-swap ≥ the non-coordinating baselines,
with multi-swap matching the optimum on most instances.
"""

from collections import defaultdict

from repro.experiments.ablations import run_optimality_gap
from repro.experiments.report import format_measurements


def test_heuristics_vs_exhaustive_optimum(benchmark, report):
    rows = benchmark.pedantic(
        run_optimality_gap,
        kwargs={"num_results": 3, "size_limit": 3, "seeds": (0, 1, 2, 3)},
        rounds=1,
        iterations=1,
    )

    report("Ablation A4: optimality gap on micro-instances (n=3, L=3)", format_measurements(rows))

    by_seed = defaultdict(dict)
    for row in rows:
        by_seed[row.value][row.algorithm] = row.dod

    matches = 0
    for algorithms in by_seed.values():
        optimum = algorithms["exhaustive"]
        assert algorithms["multi_swap"] <= optimum
        assert algorithms["single_swap"] <= optimum
        assert algorithms["multi_swap"] >= algorithms["top_significance"]
        if algorithms["multi_swap"] == optimum:
            matches += 1
    assert matches >= len(by_seed) // 2, "multi-swap should match the optimum on most instances"
