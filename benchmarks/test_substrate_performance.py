"""Substrate benchmarks: corpus generation, indexing, keyword search, extraction.

These are not paper figures; they document the cost of the XSeek-substitute
substrate that every experiment pays (generating the corpus, building the
inverted index, answering SLCA queries, extracting feature statistics), so
regressions in the supporting layers are visible separately from the DFS
algorithms themselves.
"""

import pytest

from repro.datasets.imdb import ImdbConfig, generate_imdb_corpus
from repro.features.extractor import FeatureExtractor
from repro.search.engine import SearchEngine
from repro.storage.inverted_index import InvertedIndex


def test_imdb_corpus_generation(benchmark):
    corpus = benchmark.pedantic(
        generate_imdb_corpus,
        kwargs={"config": ImdbConfig(num_movies=100, seed=3)},
        rounds=3,
        iterations=1,
    )
    assert len(corpus.store) == 100


def test_inverted_index_build(benchmark, imdb_corpus):
    index = benchmark.pedantic(
        InvertedIndex.build, args=(imdb_corpus.store,), rounds=3, iterations=1
    )
    assert len(index) > 0


@pytest.mark.parametrize("query", ["drama war", "action revenge", "comedy family"])
def test_slca_keyword_search(benchmark, imdb_corpus, query):
    engine = SearchEngine(imdb_corpus)
    result_set = benchmark(engine.search, query)
    assert len(result_set) >= 1


def test_feature_extraction_per_result(benchmark, imdb_corpus):
    engine = SearchEngine(imdb_corpus)
    extractor = FeatureExtractor(statistics=imdb_corpus.statistics)
    results = engine.search("drama war", limit=8)

    def extract_all():
        return [extractor.extract(result) for result in results]

    features = benchmark(extract_all)
    assert all(len(result_features) > 0 for result_features in features)
